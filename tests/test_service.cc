/**
 * @file
 * texcached service layer tests: request parsing/validation against
 * the experiment registry, typed error bodies, engine coalescing and
 * admission control, and byte-identity between the engine's batched
 * responses and the direct library path.
 *
 * Everything runs on tiny quad scenes so the whole file simulates in
 * well under a second; no sockets are involved (the daemon is a thin
 * framing shell over the same engine).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.hh"
#include "prof/prof.hh"
#include "service/engine.hh"
#include "service/request.hh"
#include "tracing/tracing.hh"

using namespace texcache;
using namespace texcache::service;

namespace {

/** A small sweep body over the shared quad replay. */
std::string
sweepBody(const std::string &name, const std::string &configs)
{
    return "{\"kind\":\"sweep\",\"name\":\"" + name +
           "\",\"scene\":\"quad\",\"quad\":{\"tex\":64,"
           "\"screen\":64},\"order\":\"horizontal\","
           "\"layout\":{\"kind\":\"blocked\",\"block_w\":4,"
           "\"block_h\":4}," +
           configs + "}";
}

/** Parse @p body and expect success. */
ServiceRequest
mustParse(const std::string &body)
{
    ServiceRequest req;
    RequestError err = parseRequest(body, req);
    EXPECT_FALSE(err) << err.message;
    return req;
}

/** Expect @p body to fail with @p code; return the message. */
std::string
mustFail(const std::string &body, RequestError::Code code)
{
    ServiceRequest req;
    RequestError err = parseRequest(body, req);
    EXPECT_TRUE(err) << "body unexpectedly parsed: " << body;
    EXPECT_EQ(int(code), int(err.code)) << err.message;
    return err.message;
}

/** The error-body JSON must itself parse and carry the wire code. */
void
checkErrorBody(const std::string &resp, const std::string &code)
{
    json::Value v;
    json::ParseError jerr;
    ASSERT_TRUE(json::parse(resp, v, jerr)) << resp;
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(nullptr, v.find("status"));
    EXPECT_EQ("error", v.find("status")->str());
    ASSERT_NE(nullptr, v.find("code"));
    EXPECT_EQ(code, v.find("code")->str());
    ASSERT_NE(nullptr, v.find("message"));
}

} // namespace

TEST(ServiceRequest, ParsesFullSweep)
{
    ServiceRequest req = mustParse(sweepBody(
        "t", "\"sweep\":{\"sizes\":[1024,2048],\"lines\":[32],"
             "\"assocs\":[0,2]}"));
    EXPECT_EQ(ServiceRequest::Kind::Sweep, req.kind);
    EXPECT_EQ("t", req.name);
    ASSERT_EQ(4u, req.configs.size());
    // Product order: lines, then assocs, then sizes.
    EXPECT_EQ(1024u, req.configs[0].sizeBytes);
    EXPECT_EQ(CacheConfig::kFullyAssoc, req.configs[0].assoc);
    EXPECT_EQ(2u, req.configs[2].assoc);
    EXPECT_TRUE(req.batchable());
    EXPECT_FALSE(req.control());
}

TEST(ServiceRequest, TypedParseAndValidationErrors)
{
    mustFail("not json at all", RequestError::Code::Parse);
    mustFail("{\"kind\":\"sweep\"} trailing",
             RequestError::Code::Parse);
    mustFail("{}", RequestError::Code::BadRequest); // kind missing
    mustFail("{\"kind\":\"explode\"}", RequestError::Code::BadRequest);

    // Registry misses name the offending value.
    std::string msg = mustFail(
        "{\"kind\":\"sweep\",\"scene\":\"Atrium\","
        "\"configs\":[{\"size\":1024,\"line\":32}]}",
        RequestError::Code::BadRequest);
    EXPECT_NE(std::string::npos, msg.find("Atrium"));

    // Everything that would panic deeper in the stack is caught here.
    mustFail(sweepBody("t", "\"configs\":[{\"size\":1000,"
                            "\"line\":32}]"),
             RequestError::Code::BadRequest); // non-pow2 size
    mustFail(sweepBody("t", "\"configs\":[{\"size\":1024,"
                            "\"line\":48}]"),
             RequestError::Code::BadRequest); // non-pow2 line
    mustFail(sweepBody("t", "\"configs\":[{\"size\":1024,"
                            "\"line\":32,\"assoc\":3}]"),
             RequestError::Code::BadRequest); // non-pow2 assoc
    mustFail(sweepBody("t", "\"configs\":[]"),
             RequestError::Code::BadRequest);
    mustFail(sweepBody("t", "\"configs\":[{\"size\":1024,"
                            "\"line\":32}],\"bogus\":1"),
             RequestError::Code::BadRequest); // unknown field
    mustFail(sweepBody("bad name!", "\"configs\":[{\"size\":1024,"
                                    "\"line\":32}]"),
             RequestError::Code::BadRequest); // name charset

    // Kind-specific shape constraints.
    mustFail("{\"kind\":\"classify\",\"scene\":\"quad\","
             "\"configs\":[{\"size\":1024,\"line\":32},"
             "{\"size\":2048,\"line\":32}]}",
             RequestError::Code::BadRequest); // classify wants one
    mustFail("{\"kind\":\"working_set\",\"scene\":\"quad\","
             "\"configs\":[{\"size\":1024,\"line\":32,"
             "\"assoc\":2}]}",
             RequestError::Code::BadRequest); // working_set wants FA
    mustFail(sweepBody("t", "\"configs\":[{\"size\":1024,"
                            "\"line\":32}],\"capture\":0.9"),
             RequestError::Code::BadRequest); // capture: ws only
}

TEST(ServiceRequest, BatchKeyTracksReplayIdentity)
{
    ServiceRequest a = mustParse(sweepBody(
        "a", "\"configs\":[{\"size\":1024,\"line\":32}]"));
    ServiceRequest b = mustParse(sweepBody(
        "b", "\"configs\":[{\"size\":8192,\"line\":64}]"));
    // Same scene/order/layout: configs do not split a batch.
    EXPECT_EQ(a.batchKey(), b.batchKey());

    ServiceRequest c = mustParse(
        "{\"kind\":\"sweep\",\"scene\":\"quad\",\"quad\":{\"tex\":64,"
        "\"screen\":64},\"order\":\"vertical\","
        "\"layout\":{\"kind\":\"blocked\",\"block_w\":4,"
        "\"block_h\":4},\"configs\":[{\"size\":1024,\"line\":32}]}");
    EXPECT_NE(a.batchKey(), c.batchKey()); // order differs

    ServiceRequest d = mustParse(sweepBody(
        "d", "\"configs\":[{\"size\":1024,\"line\":32}]"));
    d.layout.blockW = 8;
    EXPECT_NE(a.batchKey(), d.batchKey()); // layout differs
}

TEST(ServiceRequest, DirectRunnerIsDeterministic)
{
    TraceStore store;
    ServiceRequest req = mustParse(sweepBody(
        "det", "\"sweep\":{\"sizes\":[1024,4096],\"lines\":[32]}"));
    std::string first = runServiceRequest(store, req);
    std::string second = runServiceRequest(store, req);
    EXPECT_EQ(first, second);

    // A fresh store (fresh render) must still produce the same bytes.
    TraceStore other;
    EXPECT_EQ(first, runServiceRequest(other, req));

    // The manifest is schema-conformant JSON with the exact metrics.
    json::Value v;
    json::ParseError jerr;
    ASSERT_TRUE(json::parse(first, v, jerr)) << jerr.message;
    EXPECT_EQ("texcache-bench-1", v.find("schema")->str());
    EXPECT_EQ("det", v.find("bench")->str());
    EXPECT_EQ(nullptr, v.find("env")); // deterministic mode
    EXPECT_DOUBLE_EQ(0.0, v.find("wall_ms")->number());
    const json::Value *metrics = v.find("metrics");
    ASSERT_NE(nullptr, metrics);
    EXPECT_DOUBLE_EQ(
        2.0, metrics->find("configs")->find("value")->number());
}

TEST(ServiceEngine, CoalescesIdenticalRequests)
{
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    opts.startPaused = true;
    ServiceEngine engine(store, opts);

    const std::string body = sweepBody(
        "hot", "\"sweep\":{\"sizes\":[1024,2048,4096],"
               "\"lines\":[32]}");
    std::vector<std::future<std::string>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(engine.submit(body));
    EXPECT_EQ(6u, engine.queueDepth());
    engine.resume();

    std::vector<std::string> responses;
    for (auto &f : futures)
        responses.push_back(f.get());
    for (const std::string &r : responses)
        EXPECT_EQ(responses.front(), r);

    // All six folded into exactly one shared pass.
    const stats::Group &s = engine.statsRoot();
    EXPECT_EQ(1.0, s.value("batches"));
    EXPECT_EQ(6.0, s.value("folded"));
    EXPECT_EQ(6.0, s.value("batchable"));
    EXPECT_EQ(6.0, s.value("fold_factor"));
    EXPECT_EQ(6.0, s.value("latency_us")); // distribution count

    // And the folded response matches the direct path byte for byte.
    TraceStore ref;
    EXPECT_EQ(runServiceRequest(ref, mustParse(body)),
              responses.front());
}

TEST(ServiceEngine, BatchesSplitOnReplayKeyAndUnionConfigs)
{
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    opts.startPaused = true;
    ServiceEngine engine(store, opts);

    // Two members share a key with different configs (union pass);
    // the third simulates another order entirely.
    std::string a =
        sweepBody("a", "\"configs\":[{\"size\":1024,\"line\":32}]");
    std::string b = sweepBody(
        "b", "\"configs\":[{\"size\":4096,\"line\":32,"
             "\"assoc\":2},{\"size\":1024,\"line\":32}]");
    std::string c =
        "{\"kind\":\"sweep\",\"name\":\"c\",\"scene\":\"quad\","
        "\"quad\":{\"tex\":64,\"screen\":64},"
        "\"order\":\"vertical\",\"layout\":{\"kind\":\"blocked\","
        "\"block_w\":4,\"block_h\":4},"
        "\"configs\":[{\"size\":1024,\"line\":32}]}";

    auto fa = engine.submit(a);
    auto fb = engine.submit(b);
    auto fc = engine.submit(c);
    engine.resume();

    std::string ra = fa.get(), rb = fb.get(), rc = fc.get();
    EXPECT_EQ(2.0, engine.statsRoot().value("batches"));
    EXPECT_EQ(2.0, engine.statsRoot().value("folded"));

    TraceStore ref;
    EXPECT_EQ(runServiceRequest(ref, mustParse(a)), ra);
    EXPECT_EQ(runServiceRequest(ref, mustParse(b)), rb);
    EXPECT_EQ(runServiceRequest(ref, mustParse(c)), rc);
}

TEST(ServiceEngine, AdmissionControlRejectsAtDepth)
{
    TraceStore store;
    ServiceEngine::Options opts;
    opts.queueDepth = 2;
    opts.batchWindowMs = 0;
    opts.startPaused = true;
    ServiceEngine engine(store, opts);

    std::string body =
        sweepBody("q", "\"configs\":[{\"size\":1024,\"line\":32}]");
    auto f1 = engine.submit(body);
    auto f2 = engine.submit(body);
    auto f3 = engine.submit(body); // over depth: rejected immediately

    std::string r3 = f3.get();
    checkErrorBody(r3, "queue_full");
    EXPECT_EQ(1.0, engine.statsRoot().value("rejected_queue_full"));
    EXPECT_EQ(2.0, engine.statsRoot().value("accepted"));

    engine.resume();
    EXPECT_EQ(f1.get(), f2.get()); // queued work still completes
}

TEST(ServiceEngine, MalformedAndControlRequests)
{
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    ServiceEngine engine(store, opts);

    checkErrorBody(engine.submit("{{{{").get(), "parse_error");
    checkErrorBody(engine.submit("{\"kind\":\"nope\"}").get(),
                   "bad_request");
    EXPECT_EQ(1.0, engine.statsRoot().value("rejected_parse"));
    EXPECT_EQ(1.0, engine.statsRoot().value("rejected_bad_request"));

    // Ping answers inline; stats dumps the tree as JSON.
    EXPECT_NE(std::string::npos,
              engine.submit("{\"kind\":\"ping\"}").get().find(
                  "\"ok\""));
    json::Value stats;
    json::ParseError jerr;
    ASSERT_TRUE(json::parse(engine.submit("{\"kind\":\"stats\"}").get(),
                            stats, jerr));
    ASSERT_NE(nullptr, stats.find("accepted"));

    // Shutdown flips admission to shutting_down for new work.
    EXPECT_FALSE(engine.shutdownRequested());
    engine.submit("{\"kind\":\"shutdown\"}").get();
    EXPECT_TRUE(engine.shutdownRequested());
    checkErrorBody(
        engine.submit(
                  sweepBody("late", "\"configs\":[{\"size\":1024,"
                                    "\"line\":32}]"))
            .get(),
        "shutting_down");
}

TEST(ServiceEngine, ByteIdentityAcrossRepresentativeKinds)
{
    // Three representative configs, engine running normally (batch
    // window on, nothing paused) vs the direct library path.
    const std::string bodies[] = {
        // 1: mixed FA + SA sweep over one replay
        sweepBody("rep-sweep",
                  "\"sweep\":{\"sizes\":[1024,2048,4096,8192],"
                  "\"lines\":[32],\"assocs\":[0,2]}"),
        // 2: 3-C classification of a single config
        "{\"kind\":\"classify\",\"name\":\"rep-classify\","
        "\"scene\":\"quad\",\"quad\":{\"tex\":64,\"screen\":64},"
        "\"order\":\"horizontal\",\"layout\":{\"kind\":\"blocked\","
        "\"block_w\":4,\"block_h\":4},"
        "\"configs\":[{\"size\":2048,\"line\":32,\"assoc\":2}]}",
        // 3: working-set scan over an FA capacity sweep
        "{\"kind\":\"working_set\",\"name\":\"rep-ws\","
        "\"scene\":\"quad\",\"quad\":{\"tex\":64,\"screen\":64},"
        "\"order\":\"horizontal\",\"layout\":{\"kind\":\"blocked\","
        "\"block_w\":4,\"block_h\":4},\"capture\":0.9,"
        "\"sweep\":{\"sizes\":[512,1024,2048,4096,8192],"
        "\"lines\":[32]}}",
    };

    TraceStore store;
    ServiceEngine engine(store, ServiceEngine::Options{});
    TraceStore ref;
    for (const std::string &body : bodies) {
        SCOPED_TRACE(body);
        std::string direct = runServiceRequest(ref, mustParse(body));
        EXPECT_EQ(direct, engine.submit(body).get());
    }
}

TEST(ServiceRequest, MetricsIsAControlKind)
{
    ServiceRequest req = mustParse("{\"kind\":\"metrics\"}");
    EXPECT_EQ(ServiceRequest::Kind::Metrics, req.kind);
    EXPECT_TRUE(req.control());
    EXPECT_FALSE(req.batchable());
    EXPECT_STREQ("metrics", req.kindName());
    // Control requests take no experiment payload.
    mustFail("{\"kind\":\"metrics\",\"scene\":\"quad\"}",
             RequestError::Code::BadRequest);
}

TEST(ServiceEngine, MetricsAnswersValidExpositionInline)
{
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    ServiceEngine engine(store, opts);

    // Some traffic first so counters and histograms are non-trivial.
    engine.submit(sweepBody(
                      "m", "\"configs\":[{\"size\":1024,\"line\":32}]"))
        .get();

    std::string text =
        engine.submit("{\"kind\":\"metrics\"}").get();
    // Shape: TYPE comments, >= 20 sample series, a histogram with a
    // +Inf bucket, and never a NaN.
    EXPECT_NE(std::string::npos, text.find("# TYPE "));
    EXPECT_NE(std::string::npos,
              text.find("# TYPE texcache_service_accepted counter"));
    EXPECT_NE(std::string::npos,
              text.find("texcache_service_accepted 1"));
    EXPECT_NE(std::string::npos,
              text.find("texcache_service_latency_us_bucket"
                        "{le=\"+Inf\"} 1"));
    EXPECT_NE(std::string::npos,
              text.find("texcache_service_queue_depth_now 0"));
    EXPECT_EQ(std::string::npos, text.find("nan"));
    size_t series = 0;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        if (!line.empty() && line[0] != '#')
            ++series;
    EXPECT_GE(series, 20u);
}

TEST(ServiceEngine, SnapshotCarriesLiveGauges)
{
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    opts.startPaused = true;
    ServiceEngine engine(store, opts);

    auto f = engine.submit(sweepBody(
        "s", "\"configs\":[{\"size\":1024,\"line\":32}]"));
    stats::Snapshot snap = engine.snapshot();
    EXPECT_GT(snap.unixMs, 0);
    EXPECT_EQ(snap.value("queue_depth_now"), 1.0);
    EXPECT_EQ(snap.value("accepting"), 1.0);
    EXPECT_EQ(snap.value("accepted"), 1.0);
    engine.resume();
    f.get();
    EXPECT_EQ(engine.snapshot().value("queue_depth_now"), 0.0);
}

TEST(ServiceEngine, SlowRequestThresholdCountsAndLogs)
{
    // Threshold 0 ms: every completed job is "slow". The env is read
    // once at engine construction.
    ::setenv("TEXCACHE_SLOW_REQ_MS", "0", 1);
    {
        TraceStore store;
        ServiceEngine::Options opts;
        opts.batchWindowMs = 0;
        ServiceEngine engine(store, opts);
        engine.submit(sweepBody(
                          "sl", "\"configs\":[{\"size\":1024,"
                                "\"line\":32}]"))
            .get();
        EXPECT_EQ(1.0, engine.statsRoot().value("slow_requests"));
    }
    ::unsetenv("TEXCACHE_SLOW_REQ_MS");

    // Unset: nothing is slow.
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    ServiceEngine engine(store, opts);
    engine.submit(sweepBody(
                      "ns", "\"configs\":[{\"size\":1024,"
                            "\"line\":32}]"))
        .get();
    EXPECT_EQ(0.0, engine.statsRoot().value("slow_requests"));
}

TEST(ServiceEngine, ControlRequestsRaceJobTrafficSafely)
{
    // The satellite race: control threads hammer ping/stats/metrics
    // while job threads submit folding sweep traffic. All responses
    // must stay well-formed and the engine must keep serving
    // byte-identical results - control reads never pause or corrupt
    // the dispatcher.
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 1;
    ServiceEngine engine(store, opts);

    const std::string body = sweepBody(
        "race", "\"sweep\":{\"sizes\":[1024,2048,4096],"
                "\"lines\":[32]}");
    TraceStore ref;
    const std::string expected = runServiceRequest(ref, mustParse(body));

    std::atomic<bool> stop{false};
    std::atomic<int> controlErrors{0};
    std::vector<std::thread> controllers;
    for (int t = 0; t < 3; ++t) {
        controllers.emplace_back([&, t] {
            const char *kinds[] = {"{\"kind\":\"ping\"}",
                                   "{\"kind\":\"stats\"}",
                                   "{\"kind\":\"metrics\"}"};
            while (!stop.load(std::memory_order_relaxed)) {
                std::string resp = engine.submit(kinds[t]).get();
                bool ok = false;
                if (t == 2) {
                    ok = resp.find("# TYPE ") != std::string::npos &&
                         resp.find("nan") == std::string::npos;
                } else {
                    json::Value v;
                    json::ParseError err;
                    ok = json::parse(resp, v, err) && v.isObject();
                }
                if (!ok)
                    ++controlErrors;
            }
        });
    }

    std::vector<std::future<std::string>> jobs;
    for (int i = 0; i < 24; ++i)
        jobs.push_back(engine.submit(body));
    for (auto &f : jobs)
        EXPECT_EQ(expected, f.get());

    stop.store(true);
    for (std::thread &th : controllers)
        th.join();
    EXPECT_EQ(0, controlErrors.load());
    EXPECT_EQ(24.0, engine.statsRoot().value("accepted"));
    // Control traffic flowed during the run and the engine is still
    // accepting.
    EXPECT_GT(engine.statsRoot().value("control"), 3.0);
    EXPECT_FALSE(engine.shutdownRequested());
}

TEST(ServiceEngine, RequestIdsProduceCorrelatedAsyncSpans)
{
    tracing::configure({tracing::kSpans, 1, 1 << 16});
    {
        TraceStore store;
        ServiceEngine::Options opts;
        opts.batchWindowMs = 0;
        ServiceEngine engine(store, opts);
        engine.submit(sweepBody(
                          "sp", "\"configs\":[{\"size\":1024,"
                                "\"line\":32}]"))
            .get();
        engine.submit(sweepBody(
                          "sp2", "\"configs\":[{\"size\":2048,"
                                 "\"line\":32}]"))
            .get();
    }
    std::vector<tracing::Event> evs = tracing::snapshotEvents();
    tracing::configure({0, 1, 1 << 16});

    // Each request gets a distinct id; begin/end pair per phase name.
    uint16_t reqName = tracing::nameId("svc.request");
    uint16_t queueName = tracing::nameId("svc.queue");
    uint16_t execName = tracing::nameId("svc.execute");
    std::map<uint64_t, int> begins, ends;
    int queuePairs = 0, execPairs = 0;
    for (const tracing::Event &ev : evs) {
        if (ev.kind == uint8_t(tracing::EventKind::AsyncBegin)) {
            if (ev.a == reqName)
                ++begins[ev.addr];
            if (ev.a == queueName)
                ++queuePairs;
            if (ev.a == execName)
                ++execPairs;
        } else if (ev.kind == uint8_t(tracing::EventKind::AsyncEnd)) {
            if (ev.a == reqName)
                ++ends[ev.addr];
        }
    }
    EXPECT_EQ(begins.size(), 2u); // two requests, two distinct ids
    for (const auto &kv : begins) {
        EXPECT_NE(kv.first, 0u); // ids start at 1
        EXPECT_EQ(kv.second, 1);
        EXPECT_EQ(ends[kv.first], 1); // every begin has its end
    }
    EXPECT_EQ(queuePairs, 2);
    EXPECT_EQ(execPairs, 2);
}

TEST(ServiceRequest, ProfileIsAControlKind)
{
    ServiceRequest req = mustParse("{\"kind\":\"profile\"}");
    EXPECT_EQ(ServiceRequest::Kind::Profile, req.kind);
    EXPECT_TRUE(req.control());
    EXPECT_FALSE(req.batchable());
    EXPECT_STREQ("profile", req.kindName());
    mustFail("{\"kind\":\"profile\",\"scene\":\"quad\"}",
             RequestError::Code::BadRequest);
}

TEST(ServiceEngine, MetricsExposeTracingAndTraceStoreSeries)
{
    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    ServiceEngine engine(store, opts);
    engine.submit(sweepBody(
                      "ts", "\"configs\":[{\"size\":1024,\"line\":32}]"))
        .get();

    std::string text = engine.submit("{\"kind\":\"metrics\"}").get();
    // Every per-category trace-ring counter pair is a series, armed
    // or not (zero when tracing is off - scrapers need stable names).
    for (const char *cat : {"spans", "misses", "texels", "fetches"}) {
        std::string base =
            std::string("texcache_service_tracing_") + cat;
        EXPECT_NE(std::string::npos,
                  text.find("# TYPE " + base + "_recorded_events "
                            "counter"))
            << base;
        EXPECT_NE(std::string::npos,
                  text.find(base + "_dropped_events "))
            << base;
    }
    // The sweep above forced one quad render through the trace store.
    EXPECT_NE(std::string::npos,
              text.find("# TYPE texcache_service_trace_store_renders "
                        "counter"));
    EXPECT_NE(std::string::npos,
              text.find("texcache_service_trace_store_renders 1"));
    EXPECT_NE(std::string::npos,
              text.find("texcache_service_trace_store_disk_hits 0"));
    EXPECT_NE(std::string::npos,
              text.find("# TYPE texcache_service_trace_store_render_"
                        "wall_ms gauge"));
}

TEST(ServiceEngine, ProfileControlServesPerRequestProfiles)
{
    // Arm the profiler, push real sweep traffic through the engine,
    // and expect the "profile" control response to slice samples per
    // request tag. The effective sample rate is kernel-clamped, so
    // keep submitting work until some request got sampled (bounded).
    prof::Options popts;
    popts.hz = 997;
    ASSERT_TRUE(prof::start(popts));

    TraceStore store;
    ServiceEngine::Options opts;
    opts.batchWindowMs = 0;
    ServiceEngine engine(store, opts);
    const std::string body = sweepBody(
        "pr", "\"sweep\":{\"sizes\":[1024,2048,4096,8192,16384],"
              "\"lines\":[16,32,64],\"assocs\":[0,2,4]}");

    json::Value doc;
    json::ParseError jerr;
    bool tagged = false;
    for (int round = 0; round < 20 && !tagged; ++round) {
        engine.submit(body).get();
        std::string resp =
            engine.submit("{\"kind\":\"profile\"}").get();
        ASSERT_TRUE(json::parse(resp, doc, jerr)) << jerr.message;
        EXPECT_EQ("ok", doc.find("status")->str());
        EXPECT_EQ("profile", doc.find("kind")->str());
        const json::Value *prof = doc.find("profile");
        ASSERT_NE(nullptr, prof);
        EXPECT_TRUE(prof->find("armed")->boolean());
        const json::Value *reqs = prof->find("requests");
        ASSERT_NE(nullptr, reqs);
        for (const auto &kv : reqs->members()) {
            if (kv.first == "0")
                continue; // untagged (engine plumbing, idle threads)
            tagged = true;
            EXPECT_GT(kv.second.find("samples")->u64(), 0u);
            ASSERT_GT(kv.second.find("stacks")->members().size(), 0u);
            // Stacks are span-rooted collapsed lines with the span
            // names the sweep runs under.
            const auto &stacks = kv.second.find("stacks")->members();
            EXPECT_EQ(0u, stacks.begin()->first.rfind("span:", 0))
                << stacks.begin()->first;
        }
    }
    prof::stop();
    EXPECT_TRUE(tagged)
        << "no engine request was ever sampled under its tag";
}

TEST(ServiceEngine, ResponsesByteIdenticalWhileProfilerArmed)
{
    // The profiler must be a pure observer: responses under SIGPROF
    // interruption are byte-identical to the direct unprofiled path.
    const std::string body = sweepBody(
        "armed-rep", "\"sweep\":{\"sizes\":[1024,2048,4096],"
                     "\"lines\":[32],\"assocs\":[0,2]}");
    TraceStore ref;
    std::string direct = runServiceRequest(ref, mustParse(body));

    prof::Options popts;
    popts.hz = 997;
    ASSERT_TRUE(prof::start(popts));
    TraceStore store;
    ServiceEngine engine(store, ServiceEngine::Options{});
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(direct, engine.submit(body).get()) << i;
    prof::stop();
}
