#include "cache/stats_export.hh"

namespace texcache {

void
exportCacheStats(stats::Group &g, const CacheStats &s,
                 unsigned line_bytes)
{
    g.formula("accesses", "total accesses",
              [&s] { return double(s.accesses); });
    g.formula("hits", "accesses served without a fill",
              [&s] { return double(s.accesses - s.misses); });
    g.formula("misses", "accesses that filled a line",
              [&s] { return double(s.misses); });
    g.formula("cold_misses", "first touch of a line address",
              [&s] { return double(s.coldMisses); });
    g.formula("evictions", "valid lines displaced by fills",
              [&s] { return double(s.evictions); });
    g.formula("miss_rate", "misses / accesses",
              [&s] { return s.missRate(); });
    g.formula("bytes_fetched", "fill traffic in bytes",
              [&s, line_bytes] {
                  return double(s.bytesFetched(line_bytes));
              });
}

void
exportMissBreakdown(stats::Group &g, const MissBreakdown &b)
{
    g.formula("accesses", "total accesses",
              [&b] { return double(b.accesses); });
    g.formula("misses", "set-associative misses",
              [&b] { return double(b.misses); });
    g.formula("cold", "first touch of a line address",
              [&b] { return double(b.cold); });
    g.formula("capacity", "misses a same-size FA cache also takes",
              [&b] { return double(b.capacity); });
    g.formula("conflict", "misses beyond the FA twin's",
              [&b] { return double(b.conflict); });
    g.formula("miss_rate", "misses / accesses",
              [&b] { return b.missRate(); });
}

void
exportHierarchyStats(stats::Group &g, const TwoLevelCache &h)
{
    stats::Group &l1 = g.group("l1");
    l1.formula("accesses", "accesses summed over all L1s",
               [&h] { return double(h.totalAccesses()); });
    l1.formula("misses", "misses summed over all L1s", [&h] {
        uint64_t m = 0;
        for (unsigned i = 0; i < h.numL1(); ++i)
            m += h.l1Stats(i).misses;
        return double(m);
    });
    l1.formula("miss_rate", "aggregate L1 miss rate", [&h] {
        uint64_t a = h.totalAccesses(), m = 0;
        for (unsigned i = 0; i < h.numL1(); ++i)
            m += h.l1Stats(i).misses;
        return a ? double(m) / double(a) : 0.0;
    });
    for (unsigned i = 0; i < h.numL1(); ++i)
        exportCacheStats(l1.group(std::to_string(i)), h.l1Stats(i),
                         h.l1Config().lineBytes);

    exportCacheStats(g.group("l2"), h.l2Stats(),
                     h.l2Config().lineBytes);
    g.formula("memory_fills", "lines filled from memory",
              [&h] { return double(h.memoryFills()); });
    g.formula("memory_bytes", "bytes fetched from memory",
              [&h] { return double(h.memoryBytes()); });
}

} // namespace texcache
