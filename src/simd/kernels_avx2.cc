// Width-8 instantiation of the kernel body, compiled with -mavx2
// -ffp-contract=off and deliberately *without* -mfma: the scalar
// reference targets baseline x86-64 and can never contract a
// multiply-add, so neither may this translation unit. When the
// compiler cannot target AVX2, the entry degrades to a null table.

#include "simd/span_kernels.hh"

#if defined(__AVX2__)

#include "simd/kernel_body.hh"
#include "simd/vec_avx2.hh"

namespace texcache {
namespace simd {

const SpanKernels *
avx2Kernels()
{
    static const SpanKernels k = {&touchesKernel<VecAvx2>,
                                  &coverKernel<VecAvx2>};
    return &k;
}

} // namespace simd
} // namespace texcache

#else // !__AVX2__

namespace texcache {
namespace simd {

const SpanKernels *
avx2Kernels()
{
    return nullptr;
}

} // namespace simd
} // namespace texcache

#endif
