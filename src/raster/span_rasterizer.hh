/**
 * @file
 * Span (scanline) rasterization - the algorithm the paper describes:
 * "a triangle is rasterized one scan line at a time, where a scan line
 * consists of either a horizontal or vertical span of pixels".
 *
 * For each scanline, the covered pixel interval is computed
 * analytically from the triangle's three edge half-planes, so interior
 * pixels are emitted without per-pixel coverage tests (the win of
 * span rasterization over bounding-box scanning). The interval
 * endpoints are resolved with the *same* top-left fill rule as
 * TriangleSetup::shade, so both rasterizers produce bit-identical
 * fragment sets - a property the differential fuzz tests enforce.
 */

#ifndef TEXCACHE_RASTER_SPAN_RASTERIZER_HH
#define TEXCACHE_RASTER_SPAN_RASTERIZER_HH

#include "raster/rasterizer.hh"

namespace texcache {

/**
 * Rasterize one triangle in spans.
 *
 * @param tri      prepared triangle
 * @param screen_w target width in pixels
 * @param screen_h target height
 * @param dir      Horizontal = spans along x (scanlines), Vertical =
 *                 spans along y (the paper's vertical rasterization)
 * @param sink     receives each covered fragment in span order
 */
void rasterizeTriangleSpans(const TriangleSetup &tri, unsigned screen_w,
                            unsigned screen_h, ScanDirection dir,
                            const FragmentSink &sink);

/**
 * The exact covered pixel interval of one scan row or column: a
 * conservative interval from the triangle's half-planes, refined at
 * the endpoints with the same per-pixel predicate the bounding-box
 * rasterizer uses. Coverage along a line is an interval (each
 * half-plane condition is monotone in the running coordinate, even
 * under float rounding), so interior pixels need no coverage test -
 * the property the tile render engine's span stepping relies on.
 *
 * @param tri        prepared triangle
 * @param horizontal true = fixed y, interval in x; false = fixed x,
 *                   interval in y
 * @param fixed      the fixed pixel coordinate
 * @param lo, hi     in: clamp range; out: exact covered interval
 * @return false when the line is empty
 */
bool spanOnLine(const TriangleSetup &tri, bool horizontal, int fixed,
                int &lo, int &hi);

/**
 * The covered pixel interval of one scanline (exposed for tests).
 *
 * @param tri  prepared triangle
 * @param y    scanline (pixels sampled at y + 0.5)
 * @param x_lo in/out: clamped inclusive lower bound
 * @param x_hi in/out: clamped inclusive upper bound
 * @return false when the scanline is empty
 */
bool spanOnScanline(const TriangleSetup &tri, int y, int &x_lo,
                    int &x_hi);

} // namespace texcache

#endif // TEXCACHE_RASTER_SPAN_RASTERIZER_HH
