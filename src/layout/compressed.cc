#include "layout/compressed.hh"

#include <algorithm>

namespace texcache {

CompressedBlockedLayout::CompressedBlockedLayout(
    const std::vector<LevelDims> &d, AddressSpace &space,
    unsigned block_w, unsigned block_h, unsigned ratio)
    : TextureLayout(d), blockW_(block_w), blockH_(block_h), ratio_(ratio)
{
    fatal_if(!isPowerOfTwo(block_w) || !isPowerOfTwo(block_h),
             "block dims ", block_w, "x", block_h, " not powers of two");
    fatal_if(!isPowerOfTwo(ratio) || ratio < 2,
             "compression ratio ", ratio,
             " must be a power of two >= 2");

    unsigned ratio_log = log2Exact(ratio);
    Addr first = 0;
    for (size_t l = 0; l < dims_.size(); ++l) {
        unsigned w = dims_[l].w, h = dims_[l].h;
        unsigned ebw = std::min(block_w, w);
        unsigned ebh = std::min(block_h, h);
        Level lv;
        lv.lbw = log2Exact(ebw);
        lv.lbh = log2Exact(ebh);
        // Clamp the ratio so a block compresses to at least one byte.
        unsigned raw_log = lv.lbw + lv.lbh + 2;
        lv.ratioLog = std::min(ratio_log, raw_log);
        lv.bsLog = raw_log - lv.ratioLog;
        lv.rsLog = log2Exact(w) - lv.lbw + lv.bsLog; // blocks/row * bs
        uint64_t bytes = (static_cast<uint64_t>(w) * h *
                          kBytesPerTexel) >>
                         lv.ratioLog;
        if (bytes == 0)
            bytes = 1;
        lv.base = space.allocate(bytes);
        if (l == 0)
            first = lv.base;
        levels_.push_back(lv);
    }
    footprint_ = space.used() - first;
}

unsigned
CompressedBlockedLayout::addresses(const TexelTouch &t, Addr out[3]) const
{
    const Level &lv = levels_[t.level];
    uint64_t bx = t.u >> lv.lbw;
    uint64_t by = t.v >> lv.lbh;
    uint64_t sx = t.u & ((1u << lv.lbw) - 1);
    uint64_t sy = t.v & ((1u << lv.lbh) - 1);
    // Intra-block texel offset, scaled down to the compressed image.
    uint64_t sub = ((sy << (lv.lbw + 2)) + (sx << 2)) >> lv.ratioLog;
    out[0] = lv.base + (by << lv.rsLog) + (bx << lv.bsLog) + sub;
    return 1;
}

std::string
CompressedBlockedLayout::name() const
{
    return "compressed-" + std::to_string(blockW_) + "x" +
           std::to_string(blockH_) + "@" + std::to_string(ratio_) +
           ":1";
}

} // namespace texcache
