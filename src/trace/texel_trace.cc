#include "trace/texel_trace.hh"

namespace texcache {

void
TexelTrace::appendSample(uint16_t tex, const SampleResult &s)
{
    if (s.kind == FilterKind::Nearest) {
        const TexelTouch &t = s.touches[0];
        append({tex, t.level, t.u, t.v, TouchKind::Nearest});
    } else if (s.kind == FilterKind::Bilinear) {
        for (unsigned i = 0; i < 4; ++i) {
            const TexelTouch &t = s.touches[i];
            append({tex, t.level, t.u, t.v, TouchKind::Bilinear});
        }
    } else {
        for (unsigned i = 0; i < 4; ++i) {
            const TexelTouch &t = s.touches[i];
            append({tex, t.level, t.u, t.v, TouchKind::TrilinearLower});
        }
        for (unsigned i = 4; i < 8; ++i) {
            const TexelTouch &t = s.touches[i];
            append({tex, t.level, t.u, t.v, TouchKind::TrilinearUpper});
        }
    }
}

} // namespace texcache
