/**
 * @file
 * Sharded single-simulation replay at scale: a billion texel accesses
 * streamed from a chunked on-disk trace through the sharded runners
 * (core/shard_replay.hh) without ever materializing the trace.
 *
 * Three stages, then one gated manifest (BENCH_shard_sim.json):
 *
 *  1. Identity: on a small scene, every sharded runner is asserted
 *     field-identical to its serial counterpart at several shard
 *     counts, from memory and from a spilled chunked file (the deep
 *     property sweep lives in tests/test_shard_sim.cc; these asserts
 *     keep the bench honest before it times anything).
 *  2. Speedup: a composite workload (FA capacity sweep + a
 *     set-associative family) over a slice of the big trace, serial
 *     (shards=1) versus sharded (shards=worker count), byte-identity
 *     asserted between the two. shard_speedup is wall/wall; CI gates
 *     the fresh value by core count (the committed baseline may come
 *     from a small box, so it is "report" there).
 *  3. Scale: the full logical stream - frame-replicated to
 *     --target-accesses (TEXCACHE_SHARD_TARGET, default 10^9) - drives
 *     one FA sweep pass and one set-associative replay. Peak RSS is
 *     asserted below the materialized trace size and gated as a
 *     "ceiling" metric.
 *
 * --smoke replays a reduced stream under a small-RAM budget (CI runs
 * it under ulimit -v): the streamed path must complete where
 * --materialize - which honestly builds the whole logical trace in
 * memory - must die. Smoke mode writes no manifest.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "bench/bench_util.hh"
#include "cache/cache_sim.hh"
#include "cache/stack_dist.hh"
#include "cache/three_c.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/shard_replay.hh"
#include "core/sweep.hh"
#include "trace/chunked_trace.hh"
#include "trace/trace_source.hh"

using namespace texcache;

namespace {

uint64_t
peakRssBytes()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    // Linux reports ru_maxrss in KiB.
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
expectEqual(const CacheStats &a, const CacheStats &b, const char *what)
{
    panic_if(a.accesses != b.accesses || a.misses != b.misses ||
                 a.coldMisses != b.coldMisses ||
                 a.evictions != b.evictions,
             "sharded replay diverged from serial: ", what,
             " (accesses ", a.accesses, "/", b.accesses, ", misses ",
             a.misses, "/", b.misses, ", cold ", a.coldMisses, "/",
             b.coldMisses, ", evictions ", a.evictions, "/",
             b.evictions, ")");
}

/** The big canonical scene: ~33.5M records per rendered frame. */
SceneSpec
bigSpec()
{
    return SceneSpec::quadScene(1024, 2048, 4.0f);
}

SceneSpec
smallSpec()
{
    return SceneSpec::quadScene(256, 512, 4.0f);
}

LayoutParams
nonblocked()
{
    LayoutParams p;
    p.kind = LayoutKind::Nonblocked;
    return p;
}

struct Options
{
    uint64_t targetAccesses = 1000000000ull;
    bool targetIsDefault = true;
    unsigned shards = 0; ///< 0 = sweep thread count
    std::string dir;     ///< trace directory ("" = env or temp)
    uint64_t speedupFrames = 0; ///< 0 = derived from target
    bool smoke = false;
    uint64_t smokeRecords = 200000000ull;
    bool materialize = false;
};

uint64_t
parseCount(const std::string &arg, const char *flag)
{
    char *end = nullptr;
    double v = std::strtod(arg.c_str(), &end);
    fatal_if(end == arg.c_str() || *end || v < 0,
             flag, "='", arg, "' is not a count");
    return static_cast<uint64_t>(v);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    if (const char *env = std::getenv("TEXCACHE_SHARD_TARGET");
        env && *env) {
        o.targetAccesses = parseCount(env, "TEXCACHE_SHARD_TARGET");
        o.targetIsDefault = false;
    }
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *pfx) -> std::string {
            return a.substr(std::strlen(pfx));
        };
        if (a.rfind("--target-accesses=", 0) == 0) {
            o.targetAccesses =
                parseCount(val("--target-accesses="), "--target-accesses");
            o.targetIsDefault = false;
        } else if (a.rfind("--shards=", 0) == 0) {
            o.shards = static_cast<unsigned>(
                parseCount(val("--shards="), "--shards"));
        } else if (a.rfind("--dir=", 0) == 0) {
            o.dir = val("--dir=");
        } else if (a.rfind("--speedup-frames=", 0) == 0) {
            o.speedupFrames = parseCount(val("--speedup-frames="),
                                         "--speedup-frames");
        } else if (a == "--smoke") {
            o.smoke = true;
        } else if (a.rfind("--smoke=", 0) == 0) {
            o.smoke = true;
            o.smokeRecords = parseCount(val("--smoke="), "--smoke");
        } else if (a == "--materialize") {
            o.materialize = true;
        } else {
            fatal("unknown flag '", a,
                  "' (known: --target-accesses=N --shards=N --dir=D "
                  "--speedup-frames=N --smoke[=N] --materialize)");
        }
    }
    return o;
}

/** Directory for spilled traces; created under tmp when unconfigured. */
std::string
traceDir(Options &o, bool &created)
{
    created = false;
    if (!o.dir.empty())
        return o.dir;
    if (const char *env = std::getenv("TEXCACHE_TRACE_CACHE_DIR");
        env && *env)
        return env;
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "texcache-shard-XXXXXX")
            .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    fatal_if(!mkdtemp(buf.data()), "mkdtemp failed for ", tmpl);
    created = true;
    return buf.data();
}

/**
 * Stage 1: sharded == serial on a small scene, several shard counts,
 * memory and file sources. panic()s on any divergence.
 */
void
identityChecks(const std::string &dir, std::vector<uint64_t> &faSizes)
{
    SceneSpec spec = smallSpec();
    RasterOrder order = RasterOrder::horizontal();
    const TexelTrace &trace = benchutil::store().trace(spec, order);
    Scene scene = spec.build();
    SceneLayout layout(scene, nonblocked());

    std::vector<CacheConfig> configs;
    for (uint64_t size : {16u << 10, 64u << 10})
        for (unsigned line : {32u, 64u})
            for (unsigned assoc : {1u, 4u, CacheConfig::kFullyAssoc})
                configs.push_back({size, line, assoc});

    std::vector<CacheStats> serial =
        runCacheSweep(trace, layout, configs);
    std::vector<CacheStats> serialGroup =
        runCacheGroup(trace, layout, configs);

    MemoryTraceSource mem(trace);
    for (unsigned shards : {1u, 2u, 3u, 5u, 8u}) {
        std::vector<CacheStats> sharded =
            runCacheSweepSharded(mem, layout, configs, shards);
        std::vector<CacheStats> shardedGroup =
            runCacheGroupSharded(mem, layout, configs, shards);
        for (size_t i = 0; i < configs.size(); ++i) {
            expectEqual(sharded[i], serial[i], configs[i].str().c_str());
            expectEqual(shardedGroup[i], serialGroup[i],
                        configs[i].str().c_str());
        }
    }

    // Single replay + 3-C classification identity.
    CacheConfig one{64 << 10, 64, 2};
    expectEqual(runCacheSharded(mem, layout, one, 3),
                runCache(trace, layout, one), "single replay");
    MissBreakdown bs = classifySharded(mem, layout, one, 3);
    MissBreakdown br = classifyCache(trace, layout, one);
    panic_if(bs.accesses != br.accesses || bs.misses != br.misses ||
                 bs.cold != br.cold || bs.capacity != br.capacity ||
                 bs.conflict != br.conflict,
             "sharded 3-C classification diverged from serial");

    // FA sweep identity against the serial profiler at every size.
    StackDistProfiler prof = profileTrace(trace, layout, 64);
    ShardedStackProfile sprof = profileTraceSharded(mem, layout, 64, 4);
    panic_if(sprof.accesses != prof.accesses() ||
                 sprof.cold != prof.coldMisses(),
             "sharded stack profile diverged (accesses/cold)");
    for (uint64_t size : faSizes)
        panic_if(sprof.misses(size) != prof.misses(size),
                 "sharded stack profile diverged at ", size, " bytes");

    // The spilled chunked file must replay to the same bytes.
    std::string path =
        benchutil::store().spillTrace(spec, order, dir);
    FileTraceSource file(path);
    panic_if(file.records() != trace.size(),
             "spilled trace has ", file.records(), " records, render ",
             trace.size());
    std::vector<CacheStats> fromFile =
        runCacheSweepSharded(file, layout, configs, 3);
    for (size_t i = 0; i < configs.size(); ++i)
        expectEqual(fromFile[i], serial[i], "file replay");

    // Frame replication == concatenated serial replay.
    TexelTrace twice;
    twice.reserve(trace.size() * 2);
    twice.appendPacked(trace.packed().data(), trace.size());
    twice.appendPacked(trace.packed().data(), trace.size());
    MemoryTraceSource mem2(trace, 2);
    std::vector<CacheStats> serial2 =
        runCacheGroup(twice, layout, configs);
    std::vector<CacheStats> sharded2 =
        runCacheGroupSharded(mem2, layout, configs, 3);
    for (size_t i = 0; i < configs.size(); ++i)
        expectEqual(sharded2[i], serial2[i], "frame replication");

    std::cout << "identity: sharded == serial for "
              << configs.size() << " configs x {1,2,3,5,8} shards, "
              << "3-C, FA sweep, spilled file, frame replication\n";
}

struct SpeedupResult
{
    double serialMs = 0.0;
    double shardedMs = 0.0;
    double faSerialMs = 0.0;
    double faShardedMs = 0.0;
    double saSerialMs = 0.0;
    double saShardedMs = 0.0;
    uint64_t accesses = 0;
};

/**
 * Stage 2: the composite figure-style workload, serial vs sharded.
 * The set-associative half replicates trace decode per shard (its
 * speedup ceiling at 8 workers is ~2x); the FA half parallelizes
 * decode too (near-linear). The composite is what real sweep passes
 * look like, and is the headline shard_speedup.
 */
SpeedupResult
measureSpeedup(const std::string &path, const SceneLayout &layout,
               uint64_t frames, unsigned shards,
               const std::vector<uint64_t> &faSizes)
{
    FileTraceSource src(path, frames);
    std::vector<CacheConfig> family;
    for (uint64_t size : {32u << 10, 128u << 10})
        for (unsigned assoc : {1u, 2u, 4u})
            family.push_back({size, 64, assoc});

    SpeedupResult r;
    r.accesses = src.records() * (1 + family.size());

    auto t0 = std::chrono::steady_clock::now();
    auto faSerial = runFaSweepSharded(src, layout, 64, faSizes, 1);
    r.faSerialMs = millisSince(t0);
    t0 = std::chrono::steady_clock::now();
    auto saSerial = runCacheGroupSharded(src, layout, family, 1);
    r.saSerialMs = millisSince(t0);
    r.serialMs = r.faSerialMs + r.saSerialMs;

    t0 = std::chrono::steady_clock::now();
    auto faSharded =
        runFaSweepSharded(src, layout, 64, faSizes, shards);
    r.faShardedMs = millisSince(t0);
    t0 = std::chrono::steady_clock::now();
    auto saSharded =
        runCacheGroupSharded(src, layout, family, shards);
    r.saShardedMs = millisSince(t0);
    r.shardedMs = r.faShardedMs + r.saShardedMs;

    for (size_t i = 0; i < faSizes.size(); ++i)
        expectEqual(faSharded[i], faSerial[i], "speedup FA sweep");
    for (size_t i = 0; i < family.size(); ++i)
        expectEqual(saSharded[i], saSerial[i], family[i].str().c_str());
    return r;
}

int
runSmoke(Options &o)
{
    bool createdDir = false;
    std::string dir = traceDir(o, createdDir);
    SceneSpec spec = smallSpec();
    RasterOrder order = RasterOrder::horizontal();
    std::string path = benchutil::store().spillTrace(spec, order, dir);

    ChunkedTraceFile f = ChunkedTraceFile::mustOpen(path);
    uint64_t perFrame = f.info().records;
    uint64_t frames =
        std::max<uint64_t>(1, (o.smokeRecords + perFrame - 1) / perFrame);
    uint64_t materializedBytes = frames * perFrame * sizeof(uint64_t);
    Scene scene = spec.build();
    SceneLayout layout(scene, nonblocked());

    if (o.materialize) {
        // The honest non-streamed path: build the entire logical
        // trace in memory, then profile it. Under the CI smoke's
        // ulimit -v this allocation must die - that is the point.
        std::cout << "materializing " << frames * perFrame
                  << " records (" << materializedBytes / (1 << 20)
                  << " MiB)...\n";
        TexelTrace whole = f.readAll();
        TexelTrace big;
        big.reserve(frames * perFrame);
        for (uint64_t i = 0; i < frames; ++i)
            big.appendPacked(whole.packed().data(), whole.size());
        StackDistProfiler prof = profileTrace(big, layout, 64);
        std::cout << "materialized profile: "
                  << prof.misses(64 << 10) << " misses @64KB, peak rss "
                  << peakRssBytes() / (1 << 20) << " MiB\n";
        return 0;
    }

    auto t0 = std::chrono::steady_clock::now();
    FileTraceSource src(path, frames);
    ShardedStackProfile prof =
        profileTraceSharded(src, layout, 64, o.shards);
    double ms = millisSince(t0);
    uint64_t rss = peakRssBytes();
    panic_if(prof.accesses != frames * perFrame,
             "smoke profiled ", prof.accesses, " of ",
             frames * perFrame, " accesses");
    panic_if(rss >= materializedBytes,
             "streamed smoke peak rss ", rss,
             " not below materialized trace size ", materializedBytes);
    std::cout << "smoke ok: streamed " << prof.accesses
              << " accesses in " << fmtFixed(ms, 0) << " ms ("
              << prof.misses(64 << 10) << " misses @64KB), peak rss "
              << rss / (1 << 20) << " MiB < materialized "
              << materializedBytes / (1 << 20) << " MiB\n";
    if (createdDir)
        std::filesystem::remove_all(dir);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    if (o.smoke)
        return runSmoke(o);

    unsigned shards = resolveShards(o.shards);
    bool createdDir = false;
    std::string dir = traceDir(o, createdDir);
    std::vector<uint64_t> faSizes = cacheSizeSweep(16 << 10, 8 << 20);

    identityChecks(dir, faSizes);

    // Spill the big canonical frame once (timed as trace generation in
    // the manifest's trace_gen block, like every bench render).
    SceneSpec spec = bigSpec();
    RasterOrder order = RasterOrder::horizontal();
    std::string path = benchutil::store().spillTrace(spec, order, dir);
    uint64_t perFrame = ChunkedTraceFile::mustOpen(path).info().records;
    uint64_t frames = std::max<uint64_t>(
        1, (o.targetAccesses + perFrame - 1) / perFrame);

    // Stage 2: speedup over a slice of the stream.
    uint64_t speedupFrames =
        o.speedupFrames
            ? o.speedupFrames
            : std::max<uint64_t>(1, std::min<uint64_t>(6, frames / 5));
    SpeedupResult sp =
        measureSpeedup(path, SceneLayout(spec.build(), nonblocked()),
                       speedupFrames, shards, faSizes);

    // Stage 3: the full logical stream, streamed end to end.
    Scene scene = spec.build();
    SceneLayout layout(scene, nonblocked());
    FileTraceSource full(path, frames);
    CacheConfig saCfg{128 << 10, 64, 4};

    auto t0 = std::chrono::steady_clock::now();
    auto faFull = runFaSweepSharded(full, layout, 64, faSizes, shards);
    double faMs = millisSince(t0);
    t0 = std::chrono::steady_clock::now();
    CacheStats saFull = runCacheSharded(full, layout, saCfg, shards);
    double saMs = millisSince(t0);

    uint64_t logicalAccesses =
        faFull[0].accesses + saFull.accesses;
    uint64_t materializedBytes = frames * perFrame * sizeof(uint64_t);
    uint64_t rss = peakRssBytes();
    double fullMs = faMs + saMs;
    double aps = logicalAccesses / (fullMs / 1e3);

    panic_if(faFull[0].accesses != frames * perFrame ||
                 saFull.accesses != frames * perFrame,
             "full run replayed ", faFull[0].accesses, "/",
             saFull.accesses, " accesses, wanted ", frames * perFrame);
    // The streamed engine's point: peak RSS stays below what merely
    // holding the logical trace would cost. Only meaningful once the
    // stream dwarfs the render working set (one frame's records).
    if (frames >= 3)
        panic_if(rss >= materializedBytes,
                 "peak rss ", rss, " not below materialized trace "
                 "size ", materializedBytes);

    TextTable table("sharded streamed replay (" +
                    std::to_string(frames) + " frames x " +
                    std::to_string(perFrame) + " records, " +
                    std::to_string(shards) + " shards, " +
                    std::to_string(Sweep::threadCount()) + " threads)");
    table.header({"Pass", "Accesses", "Wall(ms)", "Accesses/s"});
    table.row({"fa_sweep(" + std::to_string(faSizes.size()) + " sizes)",
               std::to_string(faFull[0].accesses), fmtFixed(faMs, 0),
               fmtFixed(faFull[0].accesses / (faMs / 1e3) / 1e6, 1) +
                   "M"});
    table.row({saCfg.str(), std::to_string(saFull.accesses),
               fmtFixed(saMs, 0),
               fmtFixed(saFull.accesses / (saMs / 1e3) / 1e6, 1) +
                   "M"});
    table.print(std::cout);

    double speedup = sp.shardedMs > 0 ? sp.serialMs / sp.shardedMs : 0;
    std::cout << "\nspeedup (composite, " << speedupFrames
              << " frames): serial " << fmtFixed(sp.serialMs, 0)
              << " ms vs sharded " << fmtFixed(sp.shardedMs, 0)
              << " ms -> " << fmtFixed(speedup, 2) << "x (fa "
              << fmtFixed(sp.faSerialMs / sp.faShardedMs, 2) << "x, sa "
              << fmtFixed(sp.saSerialMs / sp.saShardedMs, 2) << "x)\n"
              << "peak rss " << rss / (1 << 20)
              << " MiB, materialized trace would be "
              << materializedBytes / (1 << 20) << " MiB\n";

    benchutil::dumpStats("shard_sim", [&](RunManifest &m,
                                          stats::Group &root) {
        m.config("scene", spec.key());
        m.config("shards", uint64_t(shards));
        m.config("threads", uint64_t(Sweep::threadCount()));
        m.config("frames", frames);
        m.config("target_accesses", o.targetAccesses);
        m.config("fa_sizes", uint64_t(faSizes.size()));

        // Determinism pins. The logical access count is only a stable
        // constant at the default target; reduced local runs
        // (TEXCACHE_SHARD_TARGET) keep it visible but ungated.
        m.metric("frame_records", double(perFrame), "exact");
        m.metric("logical_accesses", double(logicalAccesses),
                 o.targetIsDefault ? "exact" : "report");

        // Throughput gate: loose, machine-dependent; only collapses
        // (e.g. losing the streamed fast path) should trip it.
        m.metric("sharded_accesses_per_sec", aps, "higher", 0.5);

        // Speedups are a property of the host's core count, so the
        // committed baseline reports them; CI gates the *fresh* run's
        // value keyed on host.hardware_concurrency.
        m.metric("shard_speedup", speedup, "report");
        m.metric("fa_shard_speedup", sp.faSerialMs / sp.faShardedMs,
                 "report");
        m.metric("sa_shard_speedup", sp.saSerialMs / sp.saShardedMs,
                 "report");

        // The streamed-replay bound: peak RSS is a budget, not a
        // measurement - "ceiling" fails any fresh run above
        // baseline * 1.5 even though lower is always fine. The slack
        // covers multi-threaded hosts (more concurrent map windows and
        // tile buffers); the budget is still ~20x below what
        // materializing the default 10^9-access trace would cost.
        m.metric("peak_rss_bytes", double(rss), "ceiling", 0.5);
        m.metric("full_wall_ms", fullMs, "report");

        stats::Group &g = root.group("shard");
        g.constant("frames", frames, "frame replications of the spill");
        g.constant("per_frame_records", perFrame,
                   "records in the spilled chunked trace");
        g.constant("materialized_bytes", materializedBytes,
                   "what holding the logical trace would cost");
        g.constant("peak_rss_bytes", rss, "getrusage peak RSS");
    });

    if (createdDir)
        std::filesystem::remove_all(dir);
    return 0;
}
