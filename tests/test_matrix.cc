/** @file
 * Cross-product robustness matrix: every memory representation under
 * every rasterization order under several cache organizations, on one
 * scene. Checks the conservation invariants that let the figure
 * sweeps be compared at all:
 *
 *  - the texel-access count depends only on the scene (not the order),
 *  - the address count per representation is access count times its
 *    accesses-per-texel,
 *  - cold misses never exceed total misses, misses never exceed
 *    accesses,
 *  - a fully associative cache never misses more than a direct-mapped
 *    cache of the same size on these traces,
 *  - every representation reaches the same unique-texel floor.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/scene_layout.hh"

using namespace texcache;

namespace {

struct Fixture
{
    Scene scene = makeQuadTestScene(128, 128, 1.7f);
    std::map<std::string, RenderOutput> outputs;

    const RenderOutput &
    output(const RasterOrder &order)
    {
        auto it = outputs.find(order.str());
        if (it == outputs.end()) {
            RenderOptions opts;
            opts.writeFramebuffer = false;
            opts.countRepetition = false;
            it = outputs
                     .emplace(order.str(), render(scene, order, opts))
                     .first;
        }
        return it->second;
    }
};

Fixture &
fix()
{
    static Fixture f;
    return f;
}

std::vector<RasterOrder>
allOrders()
{
    return {RasterOrder::horizontal(), RasterOrder::vertical(),
            RasterOrder::tiledOrder(8, 8),
            RasterOrder::tiledOrder(16, 16, ScanDirection::Vertical),
            RasterOrder::hilbertOrder()};
}

} // namespace

class LayoutOrderMatrix
    : public ::testing::TestWithParam<std::tuple<LayoutKind, int>>
{};

TEST_P(LayoutOrderMatrix, ConservationInvariantsHold)
{
    auto [kind, order_idx] = GetParam();
    RasterOrder order = allOrders()[static_cast<size_t>(order_idx)];
    const RenderOutput &out = fix().output(order);

    // Access count is order-invariant.
    const RenderOutput &ref = fix().output(RasterOrder::horizontal());
    ASSERT_EQ(out.trace.size(), ref.trace.size());

    LayoutParams params;
    params.kind = kind;
    params.blockW = params.blockH = 4;
    SceneLayout layout(fix().scene, params);
    unsigned per_texel = layout.layout(0).cost().accessesPerTexel;

    for (CacheConfig cache :
         {CacheConfig{4 * 1024, 32, 1}, CacheConfig{4 * 1024, 32, 2},
          CacheConfig{4 * 1024, 32, CacheConfig::kFullyAssoc},
          CacheConfig{32 * 1024, 128, 2}}) {
        CacheStats stats = runCache(out.trace, layout, cache);
        ASSERT_EQ(stats.accesses, out.trace.size() * per_texel)
            << cache.str();
        ASSERT_LE(stats.misses, stats.accesses) << cache.str();
        ASSERT_LE(stats.coldMisses, stats.misses) << cache.str();
        ASSERT_GT(stats.misses, 0u) << cache.str();
    }

    // Cold misses (unique lines) are identical at equal line size no
    // matter the cache organization.
    CacheStats a = runCache(out.trace, layout, {2048, 64, 1});
    CacheStats b = runCache(out.trace, layout,
                            {65536, 64, CacheConfig::kFullyAssoc});
    ASSERT_EQ(a.coldMisses, b.coldMisses);

    // LRU stack property at the same geometry: FA misses <= DM misses
    // holds on these local traces.
    CacheStats dm = runCache(out.trace, layout, {8192, 64, 1});
    CacheStats fa = runCache(out.trace, layout,
                             {8192, 64, CacheConfig::kFullyAssoc});
    ASSERT_LE(fa.misses, dm.misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, LayoutOrderMatrix,
    ::testing::Combine(
        ::testing::Values(LayoutKind::Williams, LayoutKind::Nonblocked,
                          LayoutKind::Blocked,
                          LayoutKind::PaddedBlocked,
                          LayoutKind::Blocked6D,
                          LayoutKind::CompressedBlocked),
        ::testing::Range(0, 5)));

TEST(LayoutOrderMatrix, UniqueTexelFloorIsLayoutInvariant)
{
    // All single-access layouts agree on the number of unique texel
    // *coordinates*; their unique line counts differ, but at texel
    // granularity (4B lines are nonsensical for caches, exact for
    // this check via cold misses at texel-sized lines... use 16B to
    // stay above the 4B texel) the blocked family must agree exactly
    // with nonblocked.
    const RenderOutput &out = fix().output(RasterOrder::horizontal());
    std::vector<LayoutKind> kinds = {LayoutKind::Nonblocked,
                                     LayoutKind::Blocked,
                                     LayoutKind::PaddedBlocked,
                                     LayoutKind::Blocked6D};
    uint64_t ref = 0;
    for (LayoutKind k : kinds) {
        LayoutParams p;
        p.kind = k;
        p.blockW = p.blockH = 4;
        SceneLayout layout(fix().scene, p);
        // 4-byte lines = exactly one texel per line: cold misses ==
        // unique texels, whatever the arrangement.
        StackDistProfiler prof = profileTrace(out.trace, layout, 4);
        if (ref == 0)
            ref = prof.coldMisses();
        EXPECT_EQ(prof.coldMisses(), ref) << layoutKindName(k);
    }
    EXPECT_GT(ref, 0u);
}
