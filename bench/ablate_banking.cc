/**
 * @file
 * Ablation for section 7.1.2: multi-bank cache port interleaving.
 *
 * A trilinear fragment reads two 2x2 quads per cycle pair; the cache is
 * interleaved across four banks at texel granularity. The paper's
 * claim: a morton (2x2-interleaved) intra-line texel order serves any
 * quad conflict-free, while a row-major order serializes bank
 * conflicts. This harness replays each benchmark's quads through both
 * interleavings and reports cycles per quad.
 */

#include "bench/bench_util.hh"
#include "cache/bank_model.hh"
#include "trace/fragment_iter.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    TextTable table("Section 7.1.2: 4-bank interleaving, cycles per "
                    "2x2 quad (1.0 = conflict-free)");
    table.header({"Scene", "Morton", "RowMajor", "RowMajor conflict "
                                                 "cycles"});

    for (BenchScene s : allBenchScenes()) {
        const RenderOutput &out = store().output(s, sceneOrder(s));
        BankModel morton(BankInterleave::Morton);
        BankModel rowmajor(BankInterleave::RowMajor,
                           /*row_width_texels=*/8);
        forEachFragment(out.trace, [&](const FragmentTouches &f) {
            // Each filter level's 4 touches form one quad access.
            for (unsigned base = 0; base + 4 <= f.count; base += 4) {
                TexelTouch quad[4];
                for (unsigned i = 0; i < 4; ++i) {
                    const TexelRecord &r = f.recs[base + i];
                    quad[i] = {r.level, r.u, r.v};
                }
                morton.accessQuad(quad);
                rowmajor.accessQuad(quad);
            }
        });
        table.row({benchSceneName(s),
                   fmtFixed(morton.cyclesPerQuad(), 3),
                   fmtFixed(rowmajor.cyclesPerQuad(), 3),
                   std::to_string(rowmajor.conflictCycles())});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: morton order is conflict-free "
                 "(exactly 1.0 cycles/quad) for all scenes.\n";
    return 0;
}
