/**
 * @file
 * Measures the Principle of Texture Thrift (Peachey, quoted in section
 * 5.2.3): "the amount of texture information minimally required to
 * render an image of the scene is proportional to the resolution of
 * the image and is independent of the number of surfaces and the size
 * of the textures."
 *
 * The analysis scene draws a fixed-size screen at ~1 texel/pixel from
 * textures of growing size. Mip mapping makes the unique texel bytes
 * touched stay ~constant (proportional to the screen, not the
 * texture), which is what makes small texture caches viable at all.
 */

#include <unordered_set>

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

uint64_t
uniqueTexelBytes(const TexelTrace &trace)
{
    std::unordered_set<uint64_t> uniq;
    trace.forEach([&](const TexelRecord &r) {
        uniq.insert(static_cast<uint64_t>(r.u) |
                    (static_cast<uint64_t>(r.v) << 16) |
                    (static_cast<uint64_t>(r.level) << 32) |
                    (static_cast<uint64_t>(r.texture) << 37));
    });
    return uniq.size() * kBytesPerTexel;
}

} // namespace

int
main()
{
    constexpr unsigned kScreen = 512;

    TextTable table("Section 5.2.3: Principle of Texture Thrift, "
                    "512x512 screen at ~1 texel/pixel");
    table.header({"Texture", "Storage", "Unique texels used",
                  "Used/screen pixels", "Used % of storage"});

    double screen_pixels = static_cast<double>(kScreen) * kScreen;
    for (unsigned tex : {128u, 256u, 512u, 1024u, 2048u}) {
        Scene scene = makeWorstCaseScene(tex, kScreen, 0.4f);
        RenderOptions opts;
        opts.writeFramebuffer = false;
        opts.countRepetition = false;
        RenderOutput out =
            render(scene, RasterOrder::horizontal(), opts);

        uint64_t used = uniqueTexelBytes(out.trace);
        uint64_t storage = scene.textureStorageBytes();
        table.row({std::to_string(tex) + "^2", fmtBytes(storage),
                   fmtFixed(used / 1024.0, 0) + "KB",
                   fmtFixed(used / kBytesPerTexel / screen_pixels, 2),
                   fmtPercent(static_cast<double>(used) / storage,
                              1)});
    }
    table.print(std::cout);
    std::cout << "\nExpectation: unique texels used stays ~constant "
                 "(roughly proportional to screen pixels) while "
                 "texture storage grows 256x - the Principle of "
                 "Texture Thrift.\n";
    return 0;
}
