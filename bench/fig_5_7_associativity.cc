/**
 * @file
 * Reproduces Figure 5.7: the effect of cache associativity on conflict
 * misses. Textures in 8x8 blocks, 128-byte lines (the worst case for
 * conflicts: few lines in the cache).
 *
 * Panel (a) Goblet-horizontal: two-way set-associativity eliminates the
 * conflicts between the two mip-map levels of a trilinear access and
 * matches fully associative - small triangles make same-level block
 * conflicts unlikely.
 * Panel (b) Town-vertical: two-way helps, but vertical rasterization
 * through upright textures leaves same-array block conflicts that even
 * higher associativity cannot remove at large sizes.
 *
 * A supplementary panel shows the nonblocked representation on Goblet,
 * where the paper notes ~8-way would be needed to match fully
 * associative at small sizes.
 *
 * Each panel hands its full associativity x size grid to
 * runCacheSweep, which collapses the fully associative row into ONE
 * stack-distance pass, groups the set-associative configs per cache
 * size into shared replay passes, and runs the passes on the sweep
 * thread pool - 9 trace passes instead of 40 replays per panel.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

/** Prints one panel; returns its mean miss rate over the valid cells
 *  (an exact determinism pin for the run manifest). */
double
panel(const char *title, BenchScene s, const LayoutParams &params,
      unsigned line)
{
    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 128 << 10);
    TextTable table(title);
    std::vector<std::string> header = {"Assoc"};
    for (uint64_t sz : sizes)
        header.push_back(fmtBytes(sz));
    table.header(header);

    const TexelTrace &trace = store().trace(s, sceneOrder(s));
    SceneLayout layout(store().scene(s), params);

    struct AssocChoice
    {
        const char *label;
        unsigned assoc;
    };
    const AssocChoice choices[] = {
        {"direct", 1},       {"2-way", 2},
        {"4-way", 4},        {"8-way", 8},
        {"full", CacheConfig::kFullyAssoc},
    };

    // Gather the valid grid cells, sweep them in the fewest passes,
    // then scatter the stats back into rows.
    std::vector<CacheConfig> configs;
    std::vector<std::pair<size_t, size_t>> cells; // (choice, size idx)
    for (size_t c = 0; c < std::size(choices); ++c) {
        for (size_t i = 0; i < sizes.size(); ++i) {
            if (choices[c].assoc != CacheConfig::kFullyAssoc &&
                sizes[i] / line < choices[c].assoc)
                continue;
            configs.push_back({sizes[i], line, choices[c].assoc});
            cells.emplace_back(c, i);
        }
    }
    std::vector<CacheStats> stats = runCacheSweep(trace, layout, configs);

    std::vector<std::vector<std::string>> rows;
    for (const AssocChoice &c : choices) {
        std::vector<std::string> row = {c.label};
        row.insert(row.end(), sizes.size(), "-");
        rows.push_back(row);
    }
    for (size_t k = 0; k < cells.size(); ++k)
        rows[cells[k].first][cells[k].second + 1] =
            fmtPercent(stats[k].missRate());
    for (auto &row : rows)
        table.row(row);
    table.print(std::cout);
    std::cout << "\n";

    double sum = 0.0;
    for (const CacheStats &st : stats)
        sum += st.missRate();
    return stats.empty() ? 0.0 : sum / static_cast<double>(stats.size());
}

} // namespace

int
main()
{
    LayoutParams blocked = blockedForLine(256); // 8x8 blocks
    blocked.blockW = 8;
    blocked.blockH = 8;

    double mean_a =
        panel("Figure 5.7(a): Goblet-horizontal, 8x8 blocks, 128B lines",
              BenchScene::Goblet, blocked, 128);
    double mean_b =
        panel("Figure 5.7(b): Town-vertical, 8x8 blocks, 128B lines",
              BenchScene::Town, blocked, 128);

    LayoutParams nonblocked;
    nonblocked.kind = LayoutKind::Nonblocked;
    double mean_c =
        panel("Supplement (section 5.3.3): Goblet-horizontal, "
              "nonblocked, 128B lines",
              BenchScene::Goblet, nonblocked, 128);

    std::cout << "Paper reference: (a) 2-way == full for Goblet; (b) "
                 "a 2-way-vs-full gap persists for Town; nonblocked "
                 "Goblet needs ~8-way at small sizes.\n";

    dumpStats("fig_5_7", [&](RunManifest &m, stats::Group &root) {
        m.setScene("Goblet,Town");
        m.config("line_bytes", uint64_t(128));
        m.config("block", "8x8");
        root.real("panel_a_mean_miss_rate", mean_a,
                  "Goblet-horizontal blocked, mean over the grid");
        root.real("panel_b_mean_miss_rate", mean_b,
                  "Town-vertical blocked, mean over the grid");
        root.real("panel_c_mean_miss_rate", mean_c,
                  "Goblet-horizontal nonblocked, mean over the grid");
        m.metric("panel_a_mean_miss_rate", mean_a, "exact");
        m.metric("panel_b_mean_miss_rate", mean_b, "exact");
        m.metric("panel_c_mean_miss_rate", mean_c, "exact");
    });
    return 0;
}
