/**
 * @file
 * 4x4 matrix with the standard graphics transform constructors
 * (OpenGL-style right-handed view/projection conventions).
 */

#ifndef TEXCACHE_GEOM_MAT4_HH
#define TEXCACHE_GEOM_MAT4_HH

#include "geom/vec.hh"

namespace texcache {

/** Row-major 4x4 float matrix. m[r][c]. */
struct Mat4
{
    float m[4][4] = {};

    /** Identity matrix. */
    static Mat4 identity();

    /** Translation by @p t. */
    static Mat4 translate(Vec3 t);

    /** Non-uniform scale. */
    static Mat4 scale(Vec3 s);

    /** Rotation about X axis by @p radians. */
    static Mat4 rotateX(float radians);

    /** Rotation about Y axis by @p radians. */
    static Mat4 rotateY(float radians);

    /** Rotation about Z axis by @p radians. */
    static Mat4 rotateZ(float radians);

    /**
     * Right-handed perspective projection (like gluPerspective).
     *
     * @param fovy_radians vertical field of view
     * @param aspect       width / height
     * @param z_near       near plane distance (> 0)
     * @param z_far        far plane distance (> z_near)
     */
    static Mat4 perspective(float fovy_radians, float aspect, float z_near,
                            float z_far);

    /** Right-handed view matrix (like gluLookAt). */
    static Mat4 lookAt(Vec3 eye, Vec3 center, Vec3 up);

    /** Matrix product this * o (applies o first). */
    Mat4 operator*(const Mat4 &o) const;

    /** Transform a homogeneous vector. */
    Vec4 operator*(Vec4 v) const;

    /** Transform a point (w = 1). */
    Vec4 transformPoint(Vec3 p) const { return (*this) * Vec4(p, 1.0f); }
};

} // namespace texcache

#endif // TEXCACHE_GEOM_MAT4_HH
