/**
 * @file
 * Experiment harness: scene/trace caching and the simulation runners
 * behind every figure and table reproduction.
 *
 * Rendering the benchmark scenes is the expensive step, so a TraceStore
 * memoizes (scene, rasterization order) -> RenderOutput within one
 * process. The runner functions replay a trace through a SceneLayout
 * into cache models and return the statistics the paper plots.
 */

#ifndef TEXCACHE_CORE_EXPERIMENT_HH
#define TEXCACHE_CORE_EXPERIMENT_HH

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "cache/cache_sim.hh"
#include "cache/multi_sim.hh"
#include "cache/stack_dist.hh"
#include "cache/three_c.hh"
#include "core/scene_layout.hh"
#include "core/sweep.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

namespace texcache {

/**
 * Names one renderable scene: a paper benchmark scene, or a
 * parameterized single-quad test scene (makeQuadTestScene). The spec
 * is the memoization key the TraceStore and the texcached service
 * share, so "scene" in a service request is exactly "scene" in the
 * trace cache. Implicitly constructible from BenchScene so existing
 * call sites read unchanged.
 */
struct SceneSpec
{
    BenchScene bench = BenchScene::Flight;
    bool quad = false;       ///< parameterized quad test scene instead
    unsigned quadTex = 64;   ///< quad texture size (power of two)
    unsigned quadScreen = 128;
    float quadRepeat = 1.0f; ///< uv repeat factor

    SceneSpec() = default;
    SceneSpec(BenchScene s) : bench(s) {} // NOLINT: implicit by design

    static SceneSpec quadScene(unsigned tex, unsigned screen,
                               float repeat = 1.0f);

    /** Stable identity string ("Flight", "quad-64x128-r1", ...). */
    std::string key() const;

    /** Build the scene (deterministic). */
    Scene build() const;
};

/**
 * Memoizes built scenes and rendered traces for one process.
 *
 * When TEXCACHE_TRACE_CACHE_DIR is set, rendered texel traces are
 * additionally persisted there (via trace_io) keyed by scene, raster
 * order and a build stamp, so repeated bench invocations from the
 * same build skip the expensive re-render. Consumers that need only
 * the trace should call trace(), which serves disk hits without
 * rendering; output() always renders (and still populates the disk
 * cache) because the framebuffer and pipeline statistics cannot be
 * reconstructed from a trace file.
 *
 * Not internally synchronized: the texcached service owns one
 * process-wide store and touches it from its dispatcher thread only.
 * The accounting counters alone are relaxed atomics so observers
 * (the engine's metrics snapshot, taken on connection threads) can
 * read them while the dispatcher renders.
 */
class TraceStore
{
  public:
    /** The (memoized) scene object. */
    const Scene &scene(const SceneSpec &s);

    /** The (memoized) render output for a scene and raster order. */
    const RenderOutput &output(const SceneSpec &s,
                               const RasterOrder &order);

    /** The texel trace only - served from the disk cache if possible. */
    const TexelTrace &trace(const SceneSpec &s, const RasterOrder &order);

    /**
     * Render (s, order) with the trace streamed straight to a chunked
     * on-disk file - the trace is never materialized in memory, so
     * arbitrarily large frames spill at bounded RSS. Returns the file
     * path (chunkedTracePath under @p dir, or under
     * TEXCACHE_TRACE_CACHE_DIR when @p dir is empty). A valid existing
     * file is reused without rendering; a torn or stale-schema file is
     * re-rendered in place. The cache directory is pruned to
     * traceCacheCapBytes() afterwards, never evicting the returned
     * file.
     */
    std::string spillTrace(const SceneSpec &s, const RasterOrder &order,
                           const std::string &dir = "");

    /** Wall-clock spent in render() by this store (trace generation,
     *  as opposed to the simulation passes that replay the traces). */
    double
    renderMillis() const
    {
        return renderMillis_.load(std::memory_order_relaxed);
    }

    /** Number of fresh renders this store performed. */
    uint64_t
    renders() const
    {
        return renders_.load(std::memory_order_relaxed);
    }

    /** Number of traces served from the on-disk cache. */
    uint64_t
    diskHits() const
    {
        return diskHits_.load(std::memory_order_relaxed);
    }

  private:
    std::map<std::string, Scene> scenes_;
    std::map<std::pair<std::string, std::string>, RenderOutput> outputs_;
    std::map<std::pair<std::string, std::string>, TexelTrace> diskTraces_;
    std::atomic<double> renderMillis_{0.0}; ///< single writer
    std::atomic<uint64_t> renders_{0};
    std::atomic<uint64_t> diskHits_{0};
};

/**
 * On-disk cache file path for (scene, order) under
 * TEXCACHE_TRACE_CACHE_DIR, or "" when the cache is disabled. The key
 * folds in the build stamp, the trace schema and @p revision - the
 * render path's execution-model revision (kRenderPathRevision), so
 * traces generated by an older pipeline can never satisfy a newer
 * build from disk. Exposed so tests can construct stale-revision
 * paths and assert they are not served.
 */
std::string traceCachePath(const SceneSpec &s, const RasterOrder &order,
                           uint64_t revision = kRenderPathRevision);

/**
 * Cache file path for a *chunked* (streamable) trace of (scene,
 * order): like traceCachePath but with the .ctrace extension, rooted
 * at @p dir when non-empty, else at TEXCACHE_TRACE_CACHE_DIR ("" when
 * neither is set).
 */
std::string chunkedTracePath(const SceneSpec &s, const RasterOrder &order,
                             const std::string &dir = "",
                             uint64_t revision = kRenderPathRevision);

/**
 * Size cap for the trace cache directory, from TEXCACHE_TRACE_CACHE_CAP
 * (bytes, with optional K/M/G suffix); 0 = uncapped. Garbage values
 * are a fatal() configuration error.
 */
uint64_t traceCacheCapBytes();

/**
 * Evict least-recently-modified trace files (.trace, .ctrace and
 * leftover .tmp) from @p dir until its total size is at most
 * @p cap_bytes; @p keep is never evicted. Every eviction is
 * inform()ed. Returns the bytes removed. No-op when @p cap_bytes is 0.
 */
uint64_t pruneTraceCache(const std::string &dir, uint64_t cap_bytes,
                         const std::string &keep = "");

/** Replay a trace through a layout into a stack-distance profiler. */
StackDistProfiler profileTrace(const TexelTrace &trace,
                               const SceneLayout &layout,
                               unsigned line_bytes);

/** Replay a trace through a layout into one cache configuration. */
CacheStats runCache(const TexelTrace &trace, const SceneLayout &layout,
                    const CacheConfig &config);

/** Replay with side-by-side FA twin for 3-C classification. */
MissBreakdown classifyCache(const TexelTrace &trace,
                            const SceneLayout &layout,
                            const CacheConfig &config);

/**
 * Exact fully-associative LRU stats for every capacity in @p sizes
 * from ONE pass over the trace (Mattson inclusion; see
 * cache/multi_sim.hh). Equivalent to |sizes| runCache calls at
 * kFullyAssoc but paying the replay once.
 */
std::vector<CacheStats> runFaSweep(const TexelTrace &trace,
                                   const SceneLayout &layout,
                                   unsigned line_bytes,
                                   const std::vector<uint64_t> &sizes);

/**
 * One shared replay pass driving every configuration in @p configs
 * (typically the associativities of one (size, line) family). Results
 * align with the config list.
 */
std::vector<CacheStats>
runCacheGroup(const TexelTrace &trace, const SceneLayout &layout,
              const std::vector<CacheConfig> &configs);

/**
 * Exact stats for an arbitrary config list using the fewest possible
 * trace passes: fully associative configs collapse into one
 * stack-distance pass per distinct line size, set-associative ones
 * group by (size, line) family; the resulting passes execute on the
 * sweep thread pool (core/sweep.hh). Results align with @p configs
 * and are bit-identical to per-config runCache replays.
 */
std::vector<CacheStats>
runCacheSweep(const TexelTrace &trace, const SceneLayout &layout,
              const std::vector<CacheConfig> &configs);

/** Power-of-two cache sizes from @p lo to @p hi inclusive (bytes). */
std::vector<uint64_t> cacheSizeSweep(uint64_t lo = 1 << 10,
                                     uint64_t hi = 512 << 10);

/**
 * First significant working set (section 5.2.3): the smallest swept
 * size capturing at least @p capture of the achievable miss-rate
 * reduction between the smallest and largest swept caches - i.e. the
 * end of the steep part of the miss-rate-versus-size curve.
 */
uint64_t firstWorkingSet(const StackDistProfiler &prof,
                         const std::vector<uint64_t> &sizes,
                         double capture = 0.85);

/** firstWorkingSet over precomputed miss rates (aligned with sizes). */
uint64_t firstWorkingSet(const std::vector<double> &rates,
                         const std::vector<uint64_t> &sizes,
                         double capture = 0.85);

} // namespace texcache

#endif // TEXCACHE_CORE_EXPERIMENT_HH
