/**
 * @file
 * The OpenGL-1.0-flavored drawing interface of the trace layer.
 *
 * The paper's second simulation component captures the GL calls an
 * application makes and feeds them to the software pipeline ("a parser
 * that parses the GL calls while the application is running ... the
 * trace is then fed to our software implementation"). This interface
 * is that boundary: an immediate-mode command surface that both the
 * live context (gl_context.hh) and the command recorder/player
 * (command_stream.hh) implement, so anything expressed against GlApi
 * can be executed now or recorded and replayed later.
 *
 * The subset matches what the benchmarks need from GL 1.0: viewport,
 * projection/modelview matrices, mip-mapped 2-D textures, and
 * immediate-mode triangles / strips / fans with texture coordinates
 * and a scalar shade (the lighting result).
 */

#ifndef TEXCACHE_GL_GL_API_HH
#define TEXCACHE_GL_GL_API_HH

#include <cstdint>

#include "geom/mat4.hh"
#include "img/image.hh"

namespace texcache {

/** Immediate-mode primitive kinds (GL_TRIANGLES and friends). */
enum class GlPrimitive : uint8_t
{
    Triangles,     ///< independent triples
    TriangleStrip, ///< sliding window, alternating winding
    TriangleFan,   ///< first vertex shared by all triangles
};

/** Texture object handle (0 is never a valid name, as in GL). */
using GlTexture = uint32_t;

/** The recordable drawing interface. */
class GlApi
{
  public:
    virtual ~GlApi() = default;

    /** Set the render target size in pixels. */
    virtual void viewport(unsigned width, unsigned height) = 0;

    /** Load the projection matrix (replaces, no stack). */
    virtual void loadProjection(const Mat4 &m) = 0;

    /** Load the modelview matrix (replaces, no stack). */
    virtual void loadModelView(const Mat4 &m) = 0;

    /** Create a new texture name. */
    virtual GlTexture genTexture() = 0;

    /** Make @p tex the active texture for texImage2D and drawing. */
    virtual void bindTexture(GlTexture tex) = 0;

    /**
     * Define the bound texture's base image; the full mip pyramid is
     * derived by box filtering (gluBuild2DMipmaps-style).
     */
    virtual void texImage2D(const Image &base) = 0;

    /** Begin an immediate-mode primitive. */
    virtual void begin(GlPrimitive prim) = 0;

    /** Set the current texture coordinate (glTexCoord2f). */
    virtual void texCoord(float u, float v) = 0;

    /** Set the current shade - the scalar lighting result. */
    virtual void shade(float s) = 0;

    /** Emit a vertex with the current attributes (glVertex3f). */
    virtual void vertex(float x, float y, float z) = 0;

    /** End the current primitive. */
    virtual void end() = 0;
};

} // namespace texcache

#endif // TEXCACHE_GL_GL_API_HH
