/**
 * @file
 * texcached request model: the wire schema, its validation registry,
 * and the uniform ServiceRequest -> manifest runner.
 *
 * Every runnable the harness has - single cache sims, grouped
 * set-associative families, exact FA capacity sweeps, 3-C miss
 * classification, working-set scans, VT residency ablations - is
 * reachable through one typed request:
 *
 *   {
 *     "kind":  "sweep" | "classify" | "working_set" | "vt_residency"
 *              | "ping" | "stats" | "metrics" | "shutdown",
 *     "name":  "my-run",                  // manifest bench name
 *     "scene": "Flight" | ... | "quad",
 *     "quad":  {"tex": 64, "screen": 256, "repeat": 4},
 *     "order": "horizontal" | "vertical" | "hilbert"
 *              | {"dir": "...", "tiled": true, "tile_w": 8, ...},
 *     "layout": {"kind": "blocked", "block_w": 4, "block_h": 4, ...},
 *     "configs": [{"size": 32768, "line": 64, "assoc": 2}, ...],
 *     "sweep":   {"sizes": [...], "lines": [...], "assocs": [...]},
 *     "capture": 0.9,                     // working_set only
 *     "vt":      {"page": 65536, "pool": 4194304, "warm": false}
 *   }
 *
 * Parsing validates every field against the experiment registry
 * (known scenes, layout kinds, raster orders, power-of-two and range
 * constraints on cache geometry) and returns typed errors - a daemon
 * fed a hostile request must answer with a structured refusal, never
 * panic. Anything that would trip a panic_if/fatal deeper in the
 * stack is rejected here.
 *
 * runServiceRequest() is the library-level execution path: pure
 * request -> deterministic manifest string (texcache-bench-1 schema,
 * RunManifest::setDeterministic), no stdout or exit side effects.
 * The batch-CLI benches, the service engine's batched dispatch and
 * the load driver's reference computation all share the manifest
 * builders, which is what makes response-vs-CLI byte-identity checks
 * meaningful.
 */

#ifndef TEXCACHE_SERVICE_REQUEST_HH
#define TEXCACHE_SERVICE_REQUEST_HH

#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hh"

namespace texcache {
namespace service {

/** Typed request-level error (wire code + human message). */
struct RequestError
{
    enum class Code
    {
        None,
        Parse,       ///< request body is not valid JSON
        BadRequest,  ///< valid JSON, invalid against the registry
        QueueFull,   ///< admission control rejected the request
        ShuttingDown, ///< daemon is draining; no new work accepted
    };

    Code code = Code::None;
    std::string message;

    explicit operator bool() const { return code != Code::None; }

    /** Stable wire identifier ("parse_error", "queue_full", ...). */
    const char *codeName() const;

    /** One-line JSON error body ({"status":"error",...}). */
    std::string toJson() const;

    static RequestError parse(std::string msg);
    static RequestError bad(std::string msg);
    static RequestError queueFull(std::string msg);
    static RequestError shuttingDown(std::string msg);
};

/** One validated service request. */
struct ServiceRequest
{
    enum class Kind
    {
        Sweep,       ///< cache stats for a config list (shared replay)
        Classify,    ///< 3-C miss breakdown for one config
        WorkingSet,  ///< first significant working set over an FA sweep
        VtResidency, ///< virtual-texturing residency render
        Ping,        ///< control: liveness probe
        Stats,       ///< control: dump the service stats tree
        Metrics,     ///< control: Prometheus exposition snapshot
        Profile,     ///< control: per-request CPU profile slice
        Shutdown,    ///< control: drain and exit
    };

    Kind kind = Kind::Sweep;
    std::string name = "texcached"; ///< manifest bench field
    SceneSpec scene;
    RasterOrder order;
    LayoutParams layout;
    std::vector<CacheConfig> configs;
    double capture = 0.85;  ///< working_set capture fraction

    // vt_residency parameters
    unsigned vtPageBytes = 64 * 1024;
    uint64_t vtPoolBytes = 4 << 20;
    bool vtWarm = false;

    /** Control requests bypass the queue and simulation entirely. */
    bool
    control() const
    {
        return kind == Kind::Ping || kind == Kind::Stats ||
               kind == Kind::Metrics || kind == Kind::Profile ||
               kind == Kind::Shutdown;
    }

    /** Sweep requests over the same replay coalesce into one batch. */
    bool batchable() const { return kind == Kind::Sweep; }

    /**
     * Requests with equal batch keys simulate the same (scene, order,
     * layout) replay and fold into one GroupSim/FaCapacitySweep pass.
     */
    std::string batchKey() const;

    const char *kindName() const;
};

/** Deterministic full-parameter layout identity string. */
std::string layoutDesc(const LayoutParams &p);

/**
 * Parse and validate one request body. Returns a None-code error on
 * success; Parse/BadRequest errors name the offending field and, for
 * registry misses, the legal values.
 */
RequestError parseRequest(std::string_view body, ServiceRequest &out);

/**
 * Execute one non-control request against @p store and return the
 * deterministic texcache-bench-1 manifest JSON. This is the direct
 * (unbatched) path; the engine reproduces it config-for-config when
 * it folds compatible requests into one shared replay.
 */
std::string runServiceRequest(TraceStore &store,
                              const ServiceRequest &req);

/**
 * Render a sweep request's manifest from per-config results aligned
 * with req.configs (the piece the batched path shares with the
 * direct one).
 */
std::string buildSweepManifest(const ServiceRequest &req,
                               const std::vector<CacheStats> &stats);

} // namespace service
} // namespace texcache

#endif // TEXCACHE_SERVICE_REQUEST_HH
