/**
 * @file
 * The base nonblocked representation (paper Fig 5.1(b), section 5.2).
 *
 * RGBA components are stored contiguously (4 bytes per texel) and each
 * pyramid level is its own row-major 2-D array. Addressing is the
 * paper's: Texel address = base + (tv << lw) + tu, in texel units,
 * scaled by 4 bytes.
 */

#ifndef TEXCACHE_LAYOUT_NONBLOCKED_HH
#define TEXCACHE_LAYOUT_NONBLOCKED_HH

#include "layout/layout.hh"

namespace texcache {

/** Row-major per-level RGBA arrays; the study's base representation. */
class NonblockedLayout : public TextureLayout
{
  public:
    NonblockedLayout(const std::vector<LevelDims> &d, AddressSpace &space);

    unsigned addresses(const TexelTouch &t, Addr out[3]) const override;
    std::string name() const override { return "nonblocked"; }

    AddressingCost
    cost() const override
    {
        // base + (tv << lw) + tu, then << 2 for the 4-byte texel.
        return {/*adds=*/2, /*shifts=*/1, /*constShifts=*/1, /*ands=*/0,
                /*accessesPerTexel=*/1};
    }

  private:
    struct Level
    {
        Addr base;
        unsigned lw; ///< log2(width in texels)
    };
    std::vector<Level> levels_;
};

} // namespace texcache

#endif // TEXCACHE_LAYOUT_NONBLOCKED_HH
