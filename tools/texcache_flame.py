#!/usr/bin/env python3
"""texcache_flame: fold a profiler dump into a flamegraph.

Consumes either dump the in-process sampling profiler writes
(src/prof): collapsed-stack text (``frame;frame;...;leaf count``
lines, flamegraph.pl compatible) or a speedscope JSON profile. The
format is sniffed from the content, not the file name.

Two renderings, both dependency-free:

  - a self-contained HTML flamegraph (inline SVG + a few lines of
    JavaScript for hover details and click-to-zoom) written to
    --out or stdout;
  - ``--text``: an indented tree with sample counts, percentages and
    bar sketches, for terminals and CI logs.

Stdlib only, like every tool in this directory - it must run in the
same container the benches do.

Usage:
  texcache_flame.py PROF_cache_sim.collapsed --out flame.html
  texcache_flame.py PROF_cache_sim.speedscope.json --text
  texcache_flame.py PROF_x.collapsed --text --depth 6 --min-pct 1.0
"""

import argparse
import html
import json
import sys


def die(msg):
    print(f"texcache_flame: {msg}", file=sys.stderr)
    sys.exit(2)


def parse_collapsed(text, path):
    """[(frames tuple root-first, count)] from collapsed-stack text."""
    stacks = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        head, sep, count = line.rpartition(" ")
        if not sep:
            die(f"{path}:{lineno}: no trailing count: {line!r}")
        try:
            n = int(count)
        except ValueError:
            die(f"{path}:{lineno}: count {count!r} is not an integer")
        frames = tuple(f for f in head.split(";") if f)
        if not frames:
            die(f"{path}:{lineno}: empty stack")
        stacks.append((frames, n))
    return stacks


def parse_speedscope(doc, path):
    """Same shape from a speedscope 'sampled' profile document."""
    try:
        frames = [f["name"] for f in doc["shared"]["frames"]]
        profile = doc["profiles"][0]
        samples = profile["samples"]
        weights = profile["weights"]
    except (KeyError, IndexError, TypeError) as e:
        die(f"{path}: not a speedscope profile ({e})")
    if profile.get("type") != "sampled":
        die(f"{path}: profile type {profile.get('type')!r} is not "
            f"'sampled'")
    if len(samples) != len(weights):
        die(f"{path}: {len(samples)} stacks vs {len(weights)} weights")
    stacks = []
    for stack, weight in zip(samples, weights):
        try:
            stacks.append((tuple(frames[i] for i in stack),
                           int(weight)))
        except (IndexError, TypeError):
            die(f"{path}: frame index out of range in {stack!r}")
    return stacks


def load_stacks(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        die(f"cannot read {path}: {e}")
    if text.lstrip().startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            die(f"{path}: starts like JSON but does not parse: {e}")
        return parse_speedscope(doc, path)
    return parse_collapsed(text, path)


class Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.children = {}


def build_tree(stacks):
    """Merge stacks into a trie; node value = samples at-or-below."""
    root = Node("all")
    for frames, count in stacks:
        root.value += count
        node = root
        for frame in frames:
            node = node.children.setdefault(frame, Node(frame))
            node.value += count
    return root


def render_text(root, out, max_depth, min_pct):
    """Indented tree, heaviest child first."""
    total = root.value or 1
    bar_width = 24

    def walk(node, depth):
        pct = 100.0 * node.value / total
        if pct < min_pct:
            return
        bar = "#" * max(1, round(bar_width * node.value / total))
        out.write(f"{node.value:>9} {pct:6.2f}% |{bar:<{bar_width}}| "
                  f"{'  ' * depth}{node.name}\n")
        if depth >= max_depth:
            return
        for child in sorted(node.children.values(),
                            key=lambda c: (-c.value, c.name)):
            walk(child, depth + 1)

    out.write(f"{'samples':>9} {'%':>7}\n")
    walk(root, 0)


# The page is one SVG built from the merged trie, widths proportional
# to sample counts; the script swaps the x/width coordinate system on
# click so any frame can be zoomed to full width (flamegraph.pl's
# behaviour, minus the external dependency).
HTML_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
 body {{ font: 13px sans-serif; margin: 12px; }}
 #info {{ height: 2em; color: #333; }}
 svg {{ width: 100%; }}
 rect {{ stroke: white; stroke-width: 0.5; cursor: pointer; }}
 rect:hover {{ stroke: black; }}
 text {{ pointer-events: none; font: 11px monospace; fill: #111; }}
</style></head><body>
<h3>{title}</h3>
<div id="info">hover a frame; click to zoom, click the base to
reset</div>
<svg id="fg" viewBox="0 0 1200 {height}"
     xmlns="http://www.w3.org/2000/svg"></svg>
<script>
const FRAMES = {frames_json};
const TOTAL = {total};
const ROW = 18, W = 1200;
const svg = document.getElementById("fg");
const info = document.getElementById("info");
const palette = v => {{
  // deterministic warm color per name hash
  let h = 0;
  for (const ch of v) h = (h * 31 + ch.charCodeAt(0)) >>> 0;
  return `hsl(${{20 + h % 40}}, ${{70 + h % 25}}%, ${{52 + h % 16}}%)`;
}};
let zoom = 0; // index into FRAMES of the zoom root
function draw() {{
  svg.textContent = "";
  const zf = FRAMES[zoom];
  const scale = W / zf.v;
  for (const f of FRAMES) {{
    // visible iff inside the zoomed subtree or an ancestor of it
    const inside = f.x >= zf.x && f.x + f.v <= zf.x + zf.v;
    const anc = zf.x >= f.x && zf.x + zf.v <= f.x + f.v;
    if (!inside && !anc) continue;
    const x = inside ? (f.x - zf.x) * scale : 0;
    const w = inside ? f.v * scale : W;
    if (w < 0.3) continue;
    const y = f.d * ROW;
    const r = document.createElementNS(svg.namespaceURI, "rect");
    r.setAttribute("x", x); r.setAttribute("y", y);
    r.setAttribute("width", w); r.setAttribute("height", ROW - 1);
    r.setAttribute("fill", anc && !inside ? "#ccc" : palette(f.n));
    const pct = (100 * f.v / TOTAL).toFixed(2);
    r.addEventListener("mouseenter", () =>
      info.textContent = `${{f.n}} - ${{f.v}} samples (${{pct}}%)`);
    r.addEventListener("click", () =>
      {{ zoom = f.i; draw(); }});
    svg.appendChild(r);
    if (w > 30) {{
      const t = document.createElementNS(svg.namespaceURI, "text");
      t.setAttribute("x", x + 3); t.setAttribute("y", y + ROW - 6);
      const chars = Math.floor((w - 6) / 6.5);
      t.textContent = f.n.length > chars
        ? f.n.slice(0, Math.max(0, chars - 2)) + ".." : f.n;
      svg.appendChild(t);
    }}
  }}
}}
draw();
</script></body></html>
"""


def render_html(root, out, title):
    """Flatten the trie to [{i, n(ame), v(alue), x, d(epth)}]."""
    frames = []

    def walk(node, x, depth):
        idx = len(frames)
        frames.append({"i": idx, "n": node.name, "v": node.value,
                       "x": x, "d": depth})
        for child in sorted(node.children.values(),
                            key=lambda c: (-c.value, c.name)):
            walk(child, x, depth + 1)
            x += child.value

    walk(root, 0, 0)
    depth = max(f["d"] for f in frames) + 1
    out.write(HTML_PAGE.format(
        title=html.escape(title),
        height=depth * 18,
        total=root.value,
        frames_json=json.dumps(frames)))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input",
                    help="PROF_*.collapsed or PROF_*.speedscope.json")
    ap.add_argument("--out", default=None,
                    help="output path (default: stdout)")
    ap.add_argument("--text", action="store_true",
                    help="render an indented text tree instead of "
                         "HTML")
    ap.add_argument("--title", default=None,
                    help="HTML page title (default: input file name)")
    ap.add_argument("--depth", type=int, default=1000,
                    help="--text: deepest level to print")
    ap.add_argument("--min-pct", type=float, default=0.0,
                    help="--text: hide subtrees below this percent "
                         "of total samples")
    args = ap.parse_args()

    stacks = load_stacks(args.input)
    if not stacks:
        die(f"{args.input}: no stacks")
    root = build_tree(stacks)

    out = open(args.out, "w") if args.out else sys.stdout
    try:
        if args.text:
            render_text(root, out, args.depth, args.min_pct)
        else:
            render_html(root, out, args.title or args.input)
    finally:
        if args.out:
            out.close()
            print(f"texcache_flame: wrote {args.out} "
                  f"({root.value} samples)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
