#include "layout/blocked.hh"

#include <algorithm>

namespace texcache {

BlockedLayout::BlockedLayout(const std::vector<LevelDims> &d,
                             AddressSpace &space, unsigned block_w,
                             unsigned block_h)
    : BlockedLayout(d, space, block_w, block_h, /*pad_blocks=*/0)
{}

BlockedLayout::BlockedLayout(const std::vector<LevelDims> &d,
                             AddressSpace &space, unsigned block_w,
                             unsigned block_h, unsigned pad_blocks)
    : TextureLayout(d), blockW_(block_w), blockH_(block_h),
      padBlocks_(pad_blocks)
{
    fatal_if(!isPowerOfTwo(block_w) || !isPowerOfTwo(block_h),
             "block dims ", block_w, "x", block_h, " not powers of two");
    fatal_if(pad_blocks != 0 && !isPowerOfTwo(pad_blocks),
             "pad block count ", pad_blocks, " not a power of two");

    Addr first = 0;
    for (size_t l = 0; l < dims_.size(); ++l) {
        unsigned w = dims_[l].w, h = dims_[l].h;
        unsigned ebw = std::min(block_w, w);
        unsigned ebh = std::min(block_h, h);
        BlockedLevel lv;
        lv.lbw = log2Exact(ebw);
        lv.lbh = log2Exact(ebh);
        lv.bsLog = lv.lbw + lv.lbh + 2; // block bytes = ebw*ebh*4
        lv.rsLog = log2Exact(w) + lv.lbh + 2; // w * ebh * 4 bytes
        lv.padded = pad_blocks != 0;
        lv.psLog = lv.padded ? lv.bsLog + log2Exact(pad_blocks) : 0;

        unsigned block_rows = h / ebh;
        uint64_t bytes = static_cast<uint64_t>(w) * h * kBytesPerTexel;
        if (lv.padded)
            bytes += static_cast<uint64_t>(block_rows)
                     << lv.psLog; // pad bytes per block row
        lv.base = space.allocate(bytes);
        if (l == 0)
            first = lv.base;
        levels_.push_back(lv);
    }
    footprint_ = space.used() - first;
}

unsigned
BlockedLayout::addresses(const TexelTouch &t, Addr out[3]) const
{
    const BlockedLevel &lv = levels_[t.level];
    uint64_t bx = t.u >> lv.lbw;
    uint64_t by = t.v >> lv.lbh;
    uint64_t sx = t.u & ((1u << lv.lbw) - 1);
    uint64_t sy = t.v & ((1u << lv.lbh) - 1);
    Addr a = lv.base + (by << lv.rsLog) + (bx << lv.bsLog) +
             (sy << (lv.lbw + 2)) + (sx << 2);
    if (lv.padded)
        a += by << lv.psLog;
    out[0] = a;
    return 1;
}

std::string
BlockedLayout::name() const
{
    return "blocked-" + std::to_string(blockW_) + "x" +
           std::to_string(blockH_);
}

PaddedBlockedLayout::PaddedBlockedLayout(const std::vector<LevelDims> &d,
                                         AddressSpace &space,
                                         unsigned block_w,
                                         unsigned block_h,
                                         unsigned pad_blocks)
    : BlockedLayout(d, space, block_w, block_h, pad_blocks)
{
    fatal_if(pad_blocks == 0, "padded layout requires pad blocks");
}

std::string
PaddedBlockedLayout::name() const
{
    return "padded-" + std::to_string(blockW_) + "x" +
           std::to_string(blockH_) + "+" + std::to_string(padBlocks_);
}

Blocked6DLayout::Blocked6DLayout(const std::vector<LevelDims> &d,
                                 AddressSpace &space, unsigned block_w,
                                 unsigned block_h, uint64_t coarse_bytes)
    : TextureLayout(d), blockW_(block_w), blockH_(block_h)
{
    fatal_if(!isPowerOfTwo(block_w) || !isPowerOfTwo(block_h),
             "block dims ", block_w, "x", block_h, " not powers of two");
    fatal_if(coarse_bytes < static_cast<uint64_t>(block_w) * block_h *
                                kBytesPerTexel,
             "6D coarse budget ", coarse_bytes, "B smaller than one block");

    // Largest square power-of-two region whose storage fits the budget.
    coarseW_ = 1;
    while (static_cast<uint64_t>(coarseW_ * 2) * (coarseW_ * 2) *
               kBytesPerTexel <=
           coarse_bytes)
        coarseW_ *= 2;
    coarseW_ = std::max(coarseW_, std::max(block_w, block_h));

    Addr first = 0;
    for (size_t l = 0; l < dims_.size(); ++l) {
        unsigned w = dims_[l].w, h = dims_[l].h;
        Level lv;
        unsigned ecw = std::min(coarseW_, w);
        unsigned ech = std::min(coarseW_, h);
        unsigned ebw = std::min(block_w, ecw);
        unsigned ebh = std::min(block_h, ech);
        lv.lcw = log2Exact(ecw);
        lv.lch = log2Exact(ech);
        lv.cbLog = lv.lcw + lv.lch + 2;          // super-block bytes
        lv.crsLog = log2Exact(w) + lv.lch + 2;   // w * ech * 4
        lv.lbw = log2Exact(ebw);
        lv.lbh = log2Exact(ebh);
        lv.bsLog = lv.lbw + lv.lbh + 2;
        lv.frsLog = lv.lcw + lv.lbh + 2;         // ecw * ebh * 4
        uint64_t bytes = static_cast<uint64_t>(w) * h * kBytesPerTexel;
        lv.base = space.allocate(bytes);
        if (l == 0)
            first = lv.base;
        levels_.push_back(lv);
    }
    footprint_ = space.used() - first;
}

unsigned
Blocked6DLayout::addresses(const TexelTouch &t, Addr out[3]) const
{
    const Level &lv = levels_[t.level];
    uint64_t cx = t.u >> lv.lcw;
    uint64_t cy = t.v >> lv.lch;
    uint64_t iu = t.u & ((1u << lv.lcw) - 1);
    uint64_t iv = t.v & ((1u << lv.lch) - 1);
    uint64_t bx = iu >> lv.lbw;
    uint64_t by = iv >> lv.lbh;
    uint64_t sx = iu & ((1u << lv.lbw) - 1);
    uint64_t sy = iv & ((1u << lv.lbh) - 1);
    out[0] = lv.base + (cy << lv.crsLog) + (cx << lv.cbLog) +
             (by << lv.frsLog) + (bx << lv.bsLog) +
             (sy << (lv.lbw + 2)) + (sx << 2);
    return 1;
}

std::string
Blocked6DLayout::name() const
{
    return "blocked6d-" + std::to_string(blockW_) + "x" +
           std::to_string(blockH_) + "/" + std::to_string(coarseW_);
}

} // namespace texcache
