/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 *
 * Texture dimensions, block dimensions, cache line sizes and cache sizes
 * are all powers of two in this study (as in the paper and in OpenGL 1.0),
 * so exact log2/power-of-two helpers are used pervasively.
 */

#ifndef TEXCACHE_COMMON_BITS_HH
#define TEXCACHE_COMMON_BITS_HH

#include <cstdint>

#include "common/logging.hh"

namespace texcache {

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Exact log2 of a power of two; panics on other inputs. */
inline unsigned
log2Exact(uint64_t v)
{
    panic_if(!isPowerOfTwo(v), "log2Exact(", v, "): not a power of two");
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Floor of log2; panics on zero. */
inline unsigned
log2Floor(uint64_t v)
{
    panic_if(v == 0, "log2Floor(0)");
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/** Smallest power of two >= @p v (v must be nonzero). */
inline uint64_t
nextPowerOfTwo(uint64_t v)
{
    panic_if(v == 0, "nextPowerOfTwo(0)");
    uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/**
 * Interleave the low 16 bits of x and y into a 32-bit morton code
 * (x in even bit positions, y in odd). Used for intra-line texel
 * interleaving across cache banks (paper section 7.1.2).
 */
inline uint32_t
mortonEncode(uint32_t x, uint32_t y)
{
    auto spread = [](uint32_t v) {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff00ff;
        v = (v | (v << 4)) & 0x0f0f0f0f;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        return v;
    };
    return spread(x) | (spread(y) << 1);
}

/** Inverse of mortonEncode: extract (x, y) from a morton code. */
inline void
mortonDecode(uint32_t code, uint32_t &x, uint32_t &y)
{
    auto compact = [](uint32_t v) {
        v &= 0x55555555;
        v = (v | (v >> 1)) & 0x33333333;
        v = (v | (v >> 2)) & 0x0f0f0f0f;
        v = (v | (v >> 4)) & 0x00ff00ff;
        v = (v | (v >> 8)) & 0x0000ffff;
        return v;
    };
    x = compact(code);
    y = compact(code >> 1);
}

} // namespace texcache

#endif // TEXCACHE_COMMON_BITS_HH
