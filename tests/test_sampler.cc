/** @file Unit tests for OpenGL-conformant texture sampling and LOD. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "simd/isa.hh"
#include "simd/span_kernels.hh"
#include "texture/sampler.hh"

using namespace texcache;

namespace {

/** A 4x4 base image whose red channel encodes 16 * x + y. */
MipMap
gradientMip()
{
    Image base(4, 4);
    for (unsigned y = 0; y < 4; ++y)
        for (unsigned x = 0; x < 4; ++x)
            base.at(x, y) = {static_cast<uint8_t>(16 * x + y), 0, 0, 255};
    return MipMap(std::move(base));
}

} // namespace

TEST(Lod, IsLog2OfFootprint)
{
    // One texel per pixel -> lambda 0; two texels per pixel -> 1.
    EXPECT_NEAR(computeLod(1, 0, 0, 1), 0.0f, 1e-6f);
    EXPECT_NEAR(computeLod(2, 0, 0, 2), 1.0f, 1e-6f);
    EXPECT_NEAR(computeLod(4, 0, 0, 0), 2.0f, 1e-6f);
    // Magnification: half a texel per pixel -> -1.
    EXPECT_NEAR(computeLod(0.5f, 0, 0, 0.5f), -1.0f, 1e-6f);
}

TEST(Lod, TakesMaxOfAxes)
{
    EXPECT_NEAR(computeLod(8, 0, 0, 1), 3.0f, 1e-6f);
    EXPECT_NEAR(computeLod(0, 1, 8, 0), 3.0f, 1e-6f);
}

TEST(Lod, DegenerateFootprintIsVeryNegative)
{
    EXPECT_LT(computeLod(0, 0, 0, 0), -10.0f);
}

TEST(Sampler, BilinearTexelCenterIsExact)
{
    MipMap m = gradientMip();
    // Texel (2,1) center: u = (2 + 0.5)/4, v = (1 + 0.5)/4.
    TexelTouch touches[4];
    Vec4 c = sampleBilinearLevel(m, 0, 2.5f / 4, 1.5f / 4, touches);
    EXPECT_NEAR(c.x * 255.0f, 16 * 2 + 1, 0.51f);
    // All four touches surround/equal the texel (dedup not required).
    for (const TexelTouch &t : touches) {
        EXPECT_EQ(t.level, 0);
        EXPECT_LE(t.u, 3u);
        EXPECT_LE(t.v, 3u);
    }
}

TEST(Sampler, BilinearMidpointAverages)
{
    MipMap m = gradientMip();
    TexelTouch touches[4];
    // Halfway between texels (0,0) and (1,0): u = 1.0/4.
    Vec4 c = sampleBilinearLevel(m, 0, 1.0f / 4, 0.5f / 4, touches);
    float expect = (0 + 16) / 2.0f;
    EXPECT_NEAR(c.x * 255.0f, expect, 0.75f);
}

TEST(Sampler, RepeatWrapsNegativeAndLarge)
{
    MipMap m = gradientMip();
    TexelTouch t1[4], t2[4];
    Vec4 a = sampleBilinearLevel(m, 0, 0.3f, 0.6f, t1);
    Vec4 b = sampleBilinearLevel(m, 0, 0.3f + 3.0f, 0.6f - 2.0f, t2);
    EXPECT_NEAR(a.x, b.x, 1e-5f);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(t1[i].u, t2[i].u);
        EXPECT_EQ(t1[i].v, t2[i].v);
    }
}

TEST(Sampler, MagnificationUsesBilinearLevel0)
{
    MipMap m = gradientMip();
    SampleResult s = sampleMipMap(m, 0.5f, 0.5f, -2.0f);
    EXPECT_EQ(s.kind, FilterKind::Bilinear);
    EXPECT_EQ(s.numTouches, 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(s.touches[i].level, 0);
}

TEST(Sampler, MinificationTouchesTwoAdjacentLevels)
{
    MipMap m(Image(64, 64, Rgba8{200, 0, 0, 255}));
    SampleResult s = sampleMipMap(m, 0.4f, 0.7f, 2.5f);
    EXPECT_EQ(s.kind, FilterKind::Trilinear);
    EXPECT_EQ(s.numTouches, 8u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(s.touches[i].level, 2);
    for (unsigned i = 4; i < 8; ++i)
        EXPECT_EQ(s.touches[i].level, 3);
}

TEST(Sampler, LambdaClampsToCoarsestLevel)
{
    MipMap m(Image(16, 16, Rgba8{99, 0, 0, 255})); // levels 0..4
    SampleResult s = sampleMipMap(m, 0.5f, 0.5f, 100.0f);
    EXPECT_EQ(s.numTouches, 8u);
    // Still eight reads, from the two coarsest levels.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(s.touches[i].level, 3);
    for (unsigned i = 4; i < 8; ++i)
        EXPECT_EQ(s.touches[i].level, 4);
    EXPECT_NEAR(s.color.x * 255.0f, 99.0f, 0.51f);
}

TEST(Sampler, TrilinearBlendsBetweenLevels)
{
    // Level 0 = 2x2 red=0; level 1 (1x1) = red=0. Construct instead a
    // 2-level map where level 0 is 0 and level 1 averages to 60.
    Image base(2, 2);
    base.at(0, 0) = {0, 0, 0, 255};
    base.at(1, 0) = {40, 0, 0, 255};
    base.at(0, 1) = {80, 0, 0, 255};
    base.at(1, 1) = {120, 0, 0, 255};
    MipMap m(std::move(base));

    // lambda = 0.5: halfway between level 0 (bilinear at center = 60)
    // and level 1 (constant 60). At the exact center both levels give
    // the 4-texel average, so the blend must too.
    SampleResult s = sampleMipMap(m, 0.5f, 0.5f, 0.5f);
    EXPECT_NEAR(s.color.x * 255.0f, 60.0f, 1.0f);
}

TEST(Sampler, TrilinearConvergesToUpperLevelAsLambdaGrows)
{
    Image base(2, 2);
    base.at(0, 0) = {0, 0, 0, 255};
    base.at(1, 0) = {0, 0, 0, 255};
    base.at(0, 1) = {0, 0, 0, 255};
    base.at(1, 1) = {0, 0, 0, 255};
    MipMap m(std::move(base));
    // Upper (1x1) level is 0 as well; use corner sample where level 0
    // wraps: still 0. This degenerate check just asserts stability.
    SampleResult near0 = sampleMipMap(m, 0.1f, 0.1f, 0.01f);
    SampleResult near1 = sampleMipMap(m, 0.1f, 0.1f, 0.99f);
    EXPECT_NEAR(near0.color.x, near1.color.x, 1e-5f);
}

/** Property sweep: touch coordinates are always within level bounds. */
class SamplerBounds
    : public ::testing::TestWithParam<std::tuple<float, float, float>>
{};

TEST_P(SamplerBounds, TouchesInRange)
{
    static MipMap m(Image(32, 8, Rgba8{1, 2, 3, 255}));
    auto [u, v, lambda] = GetParam();
    SampleResult s = sampleMipMap(m, u, v, lambda);
    for (unsigned i = 0; i < s.numTouches; ++i) {
        const TexelTouch &t = s.touches[i];
        ASSERT_LT(t.level, m.numLevels());
        ASSERT_LT(t.u, m.width(t.level));
        ASSERT_LT(t.v, m.height(t.level));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerBounds,
    ::testing::Combine(::testing::Values(-1.7f, -0.01f, 0.0f, 0.42f,
                                         0.999f, 5.3f),
                       ::testing::Values(-2.0f, 0.0f, 0.5f, 0.9999f,
                                         17.0f),
                       ::testing::Values(-3.0f, 0.0f, 0.4f, 1.0f, 2.7f,
                                         4.9f, 50.0f)));

TEST(Sampler, ClampWrapPinsBorderTexels)
{
    MipMap m = gradientMip();
    TexelTouch t[4];
    // Far outside [0,1]: clamp pins to the border texel row/column.
    sampleBilinearLevel(m, 0, 2.5f, -1.0f, t, WrapMode::Clamp);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(t[i].u, 3u);
        EXPECT_EQ(t[i].v, 0u);
    }
}

TEST(Sampler, ClampAndRepeatAgreeInInterior)
{
    MipMap m = gradientMip();
    TexelTouch tr[4], tc[4];
    Vec4 a = sampleBilinearLevel(m, 0, 0.5f, 0.5f, tr,
                                 WrapMode::Repeat);
    Vec4 b = sampleBilinearLevel(m, 0, 0.5f, 0.5f, tc,
                                 WrapMode::Clamp);
    EXPECT_NEAR(a.x, b.x, 1e-6f);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(tr[i].u, tc[i].u);
        EXPECT_EQ(tr[i].v, tc[i].v);
    }
}

TEST(Sampler, ClampDiffersFromRepeatAtEdges)
{
    MipMap m = gradientMip();
    TexelTouch tr[4], tc[4];
    // u slightly past 1.0: repeat wraps to texel 0, clamp stays at 3.
    sampleBilinearLevel(m, 0, 0.999f, 0.5f, tr, WrapMode::Repeat);
    sampleBilinearLevel(m, 0, 0.999f, 0.5f, tc, WrapMode::Clamp);
    EXPECT_EQ(tr[1].u, 0u);
    EXPECT_EQ(tc[1].u, 3u);
}

TEST(Sampler, ClampTrilinearAndNearestModes)
{
    MipMap m(Image(16, 16, Rgba8{50, 0, 0, 255}));
    SampleResult tri =
        sampleMipMap(m, 3.0f, -2.0f, 1.5f, WrapMode::Clamp);
    for (unsigned i = 0; i < tri.numTouches; ++i) {
        EXPECT_EQ(tri.touches[i].u,
                  m.width(tri.touches[i].level) - 1);
        EXPECT_EQ(tri.touches[i].v, 0u);
    }
    SampleResult nst =
        sampleMipMapMode(m, 3.0f, -2.0f, 0.0f,
                         FilterMode::NearestMipNearest,
                         WrapMode::Clamp);
    EXPECT_EQ(nst.touches[0].u, 15u);
    EXPECT_EQ(nst.touches[0].v, 0u);
}

TEST(Sampler, TouchOnlySamplingMatchesFullFiltering)
{
    // The tile render engine uses sampleTouchesMipMapMode when no
    // framebuffer is produced; its kind/numTouches/touches must equal
    // sampleMipMapMode's bit for bit over the whole parameter space:
    // all filter modes, both wraps, magnification (lambda <= 0),
    // minification, beyond-coarsest lambda, and out-of-[0,1) coords.
    MipMap mips[2] = {gradientMip(),
                      MipMap(Image(64, 16, Rgba8{9, 9, 9, 255}))};
    const FilterMode modes[] = {FilterMode::Trilinear,
                                FilterMode::BilinearMipNearest,
                                FilterMode::NearestMipNearest};
    const WrapMode wraps[] = {WrapMode::Repeat, WrapMode::Clamp};

    uint32_t x = 12345;
    auto rnd = [&] {
        x = x * 1664525u + 1013904223u;
        return static_cast<float>(x >> 8) / static_cast<float>(1 << 24);
    };
    for (int iter = 0; iter < 20000; ++iter) {
        const MipMap &m = mips[iter & 1];
        float u = rnd() * 6.0f - 3.0f;
        float v = rnd() * 6.0f - 3.0f;
        float lambda = rnd() * 14.0f - 4.0f; // < 0 and > max_level
        FilterMode mode = modes[iter % 3];
        WrapMode wrap = wraps[(iter / 3) % 2];

        SampleResult full = sampleMipMapMode(m, u, v, lambda, mode, wrap);
        SampleResult touch;
        sampleTouchesMipMapMode(m, u, v, lambda, mode, touch, wrap);

        ASSERT_EQ(static_cast<int>(full.kind),
                  static_cast<int>(touch.kind))
            << "iter " << iter;
        ASSERT_EQ(full.numTouches, touch.numTouches) << "iter " << iter;
        for (unsigned i = 0; i < full.numTouches; ++i) {
            ASSERT_EQ(full.touches[i].level, touch.touches[i].level)
                << "iter " << iter << " touch " << i;
            ASSERT_EQ(full.touches[i].u, touch.touches[i].u)
                << "iter " << iter << " touch " << i;
            ASSERT_EQ(full.touches[i].v, touch.touches[i].v)
                << "iter " << iter << " touch " << i;
        }
    }
}

TEST(Sampler, SimdBatchesMatchScalarKernel)
{
    // Randomized fragment batches through the SIMD span kernels
    // (simd/span_kernels.hh) for every compiled ISA level, compared
    // lane for lane against the scalar kernel on synthetic attribute
    // planes - unconstrained by real triangle geometry, and always
    // including unaligned tails (n % lanes != 0).
    MipMap mips[2] = {gradientMip(),
                      MipMap(Image(64, 16, Rgba8{9, 9, 9, 255}))};
    const FilterMode modes[] = {FilterMode::Trilinear,
                                FilterMode::BilinearMipNearest,
                                FilterMode::NearestMipNearest};
    const WrapMode wraps[] = {WrapMode::Repeat, WrapMode::Clamp};
    const simd::SpanKernels *scalar = simd::scalarKernels();
    ASSERT_NE(scalar, nullptr);

    uint32_t x = 0xfeedbeef;
    auto rnd = [&] {
        x = x * 1664525u + 1013904223u;
        return static_cast<float>(x >> 8) / static_cast<float>(1 << 24);
    };
    for (int iter = 0; iter < 400; ++iter) {
        const MipMap &m = mips[iter & 1];
        simd::SpanContext ctx{};
        // 1/w plane kept strictly positive over the pixel range so
        // every lane holds a renderable fragment.
        ctx.iwE0 = 1.5f + rnd() * 1.5f;
        ctx.iwEx = (rnd() - 0.5f) * 0.02f;
        ctx.iwEy = (rnd() - 0.5f) * 0.02f;
        ctx.uwE0 = (rnd() - 0.5f) * 4.0f;
        ctx.uwEx = (rnd() - 0.5f) * 0.1f;
        ctx.uwEy = (rnd() - 0.5f) * 0.1f;
        ctx.vwE0 = (rnd() - 0.5f) * 4.0f;
        ctx.vwEx = (rnd() - 0.5f) * 0.1f;
        ctx.vwEy = (rnd() - 0.5f) * 0.1f;
        ctx.texW = static_cast<float>(m.width(0));
        ctx.texH = static_cast<float>(m.height(0));
        ctx.mip = &m;
        ctx.texture = static_cast<uint16_t>(iter % 2048);
        ctx.mode = modes[iter % 3];
        ctx.wrap = wraps[(iter / 3) % 2];

        int n = 1 + static_cast<int>(rnd() * 7.99f); // 1..8
        int32_t xs[simd::kSpanBatch], ys[simd::kSpanBatch];
        for (int i = 0; i < n; ++i) {
            xs[i] = static_cast<int32_t>(rnd() * 64.0f);
            ys[i] = static_cast<int32_t>(rnd() * 64.0f);
        }

        simd::SpanBatchOut ref;
        scalar->touches(ctx, xs, ys, n, ref);
        for (simd::Isa isa : simd::supportedIsas()) {
            if (isa == simd::Isa::Scalar)
                continue;
            simd::SpanBatchOut out;
            simd::kernelsFor(isa)->touches(ctx, xs, ys, n, out);
            for (int i = 0; i < n; ++i) {
                SCOPED_TRACE(std::string("iter ") +
                             std::to_string(iter) + " isa=" +
                             simd::isaName(isa) + " lane " +
                             std::to_string(i) + " of " +
                             std::to_string(n));
                ASSERT_EQ(out.kind[i], ref.kind[i]);
                ASSERT_EQ(out.numTouches[i], ref.numTouches[i]);
                ASSERT_EQ(out.firstLevel[i], ref.firstLevel[i]);
                ASSERT_EQ(out.firstU[i], ref.firstU[i]);
                ASSERT_EQ(out.firstV[i], ref.firstV[i]);
                ASSERT_EQ(out.anchorU[i], ref.anchorU[i]);
                ASSERT_EQ(out.anchorV[i], ref.anchorV[i]);
                ASSERT_EQ(out.recEnd[i], ref.recEnd[i]);
            }
            ASSERT_EQ(0, std::memcmp(out.records, ref.records,
                                     ref.recEnd[n - 1] *
                                         sizeof(uint64_t)))
                << "iter " << iter << " isa=" << simd::isaName(isa)
                << ": packed records diverged";
        }
    }
}
