/**
 * @file
 * Locality statistics over texel traces (paper sections 3.1.2 and 5.2.3).
 *
 *  - accesses per unique texel, split by filter role (the paper reports
 *    ~4 for the trilinear lower level, ~14-16 for the upper level, and
 *    scene-dependent values around 18 for bilinear magnification);
 *  - texture runlengths: the average run of consecutive accesses to the
 *    same texture (hundreds of thousands in the paper, showing the
 *    working set holds one texture at a time);
 *  - texture repetition: how often a texel is reused because texture
 *    coordinates wrap (fed by the renderer, which sees pre-wrap
 *    coordinates).
 */

#ifndef TEXCACHE_TRACE_TRACE_STATS_HH
#define TEXCACHE_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <unordered_set>

#include "trace/texel_trace.hh"

namespace texcache {

/** Accesses-per-unique-texel for one filter role. */
struct PerTexelStats
{
    uint64_t accesses = 0;
    uint64_t uniqueTexels = 0;

    double
    accessesPerTexel() const
    {
        return uniqueTexels
                   ? static_cast<double>(accesses) / uniqueTexels
                   : 0.0;
    }
};

/** Result of analyzing a trace. */
struct TraceStats
{
    PerTexelStats bilinear;
    PerTexelStats trilinearLower;
    PerTexelStats trilinearUpper;
    PerTexelStats nearest;

    uint64_t accesses = 0;
    uint64_t textureRuns = 0;

    /** Mean length of a run of accesses to one texture (section 5.2.3). */
    double
    averageRunlength() const
    {
        return textureRuns ? static_cast<double>(accesses) / textureRuns
                           : 0.0;
    }
};

/** Single pass over a trace computing TraceStats. */
TraceStats analyzeTrace(const TexelTrace &trace);

/**
 * Texture-repetition counter (section 3.1.2). The renderer feeds one
 * sample per fragment: the *unwrapped* integer texel coordinate of the
 * filter footprint alongside its wrapped counterpart. The repetition
 * factor is (# distinct unwrapped texels) / (# distinct wrapped texels):
 * 1.0 when no texture repeats, ~3 for heavily tiled brick walls.
 */
class RepetitionCounter
{
  public:
    /** Record one fragment's footprint anchor for texture @p tex. */
    void
    record(uint16_t tex, uint16_t level, int32_t unwrapped_u,
           int32_t unwrapped_v, uint16_t wrapped_u, uint16_t wrapped_v)
    {
        uint64_t key_base = (static_cast<uint64_t>(tex) << 48) |
                            (static_cast<uint64_t>(level) << 40);
        uint64_t uw = key_base |
                      (static_cast<uint64_t>(static_cast<uint32_t>(
                           unwrapped_u)) &
                       0xfffff) |
                      ((static_cast<uint64_t>(static_cast<uint32_t>(
                            unwrapped_v)) &
                        0xfffff)
                       << 20);
        uint64_t wr = key_base | wrapped_u |
                      (static_cast<uint64_t>(wrapped_v) << 20);
        unwrapped_.insert(uw);
        wrapped_.insert(wr);
    }

    double
    repetitionFactor() const
    {
        return wrapped_.empty()
                   ? 0.0
                   : static_cast<double>(unwrapped_.size()) /
                         static_cast<double>(wrapped_.size());
    }

    uint64_t uniqueWrapped() const { return wrapped_.size(); }
    uint64_t uniqueUnwrapped() const { return unwrapped_.size(); }

  private:
    std::unordered_set<uint64_t> unwrapped_;
    std::unordered_set<uint64_t> wrapped_;
};

} // namespace texcache

#endif // TEXCACHE_TRACE_TRACE_STATS_HH
