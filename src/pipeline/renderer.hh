/**
 * @file
 * The software graphics pipeline (paper section 4.1, first component).
 *
 * Geometry -> near clip -> perspective divide -> viewport -> fragment
 * generation in the configured rasterization order -> mip-mapped
 * texturing (every generated fragment is textured) -> depth test ->
 * framebuffer write. As in the paper's machine model (Fig 2.1), hidden
 * surface removal happens *after* texturing, so occluded fragments still
 * produce texture traffic.
 *
 * Rendering produces the frame image, the texel-coordinate trace, and
 * the per-scene statistics used by Tables 2.1 and 4.1.
 */

#ifndef TEXCACHE_PIPELINE_RENDERER_HH
#define TEXCACHE_PIPELINE_RENDERER_HH

#include <cstdint>
#include <functional>

#include "img/image.hh"
#include "pipeline/scene_types.hh"
#include "raster/rasterizer.hh"
#include "stats/stats.hh"
#include "trace/texel_trace.hh"
#include "trace/trace_stats.hh"

namespace texcache {

/** Per-frame pipeline statistics (Table 4.1 inputs). */
struct RenderStats
{
    uint64_t trianglesIn = 0;
    uint64_t trianglesculled = 0;     ///< rejected by near clip
    uint64_t trianglesRasterized = 0; ///< post-clip screen triangles
    uint64_t fragments = 0;           ///< textured pixels (with overdraw)
    uint64_t texelAccesses = 0;
    uint64_t bilinearFragments = 0;   ///< single-level bilinear
    uint64_t trilinearFragments = 0;
    uint64_t nearestFragments = 0;    ///< nearest-filter (extension)
    /** Base mip level each fragment sampled (log2 buckets; levels are
     *  small, so bucket k>=1 covers levels [2^(k-1), 2^k)). */
    stats::Distribution lodLevels;

    double sumCoveredArea = 0.0; ///< covered pixels per *input* triangle
    double sumBoxWidth = 0.0;    ///< screen bbox dims of drawn triangles
    double sumBoxHeight = 0.0;
    uint64_t boxSamples = 0;

    double avgTriangleArea() const
    {
        return trianglesIn ? sumCoveredArea / trianglesIn : 0.0;
    }
    double avgTriangleWidth() const
    {
        return boxSamples ? sumBoxWidth / boxSamples : 0.0;
    }
    double avgTriangleHeight() const
    {
        return boxSamples ? sumBoxHeight / boxSamples : 0.0;
    }
};

/** Everything a frame render produces. */
struct RenderOutput
{
    Image framebuffer;
    TexelTrace trace;
    RepetitionCounter repetition;
    RenderStats stats;
};

/**
 * Virtual-texturing decision for one fragment (produced by the
 * src/vt/ subsystem's resolver, consumed by the renderer). When
 * degraded, the fragment samples @p level bilinearly - the finest
 * fully-resident ancestor of its desired mip level - instead of
 * filtering at the requested level of detail.
 */
struct VtDecision
{
    bool degraded = false;
    uint16_t level = 0; ///< resident ancestor level when degraded
};

/**
 * Revision of the render path's *execution model*, keyed into the
 * on-disk trace cache (core/experiment.cc) so traces produced by an
 * older pipeline can never satisfy a newer build from disk and mask a
 * trace-generation regression. Bump whenever the way fragments or
 * texels are generated changes (revision 1 was the serial-only
 * renderer; 2 added the tile-parallel engine; 3 added the
 * ISA-dispatched SIMD span kernels to the touch-only path).
 */
inline constexpr uint64_t kRenderPathRevision = 3;

/**
 * Tile-parallel execution policy of render(). The parallel engine bins
 * triangles into screen tiles, renders them on the core/sweep pool and
 * merges the per-tile outputs in canonical traversal order, producing
 * byte-identical trace/framebuffer/stats to the serial reference at
 * any thread count (DESIGN.md section 11).
 */
enum class ParallelTiles : uint8_t
{
    /** Tile engine unless per-fragment hooks (onFragment / vtResolve)
     *  are set; hooks are order-sensitive and stateful, so they take
     *  the serial reference path. */
    Auto,
    Serial, ///< always the serial reference renderer
    Force,  ///< always the tile engine; fatal() if hooks are set
};

/** Options controlling what the render captures and how it filters. */
struct RenderOptions
{
    bool captureTrace = true;   ///< record the texel trace
    /**
     * When set (and captureTrace is on), captured records stream into
     * this sink instead of materializing in RenderOutput::trace, which
     * stays empty. The sink receives exactly the bytes the trace would
     * have held, in the same order, on both render paths: the serial
     * renderer streams per sample; the tile engine buffers per-tile
     * segments (peak memory bounded by one frame's fragments) and
     * drains them in canonical traversal order during the merge. The
     * sink is invoked from the merge/serial thread only.
     */
    TraceSink *traceSink = nullptr;
    bool writeFramebuffer = true; ///< produce the color image
    bool countRepetition = true;  ///< feed the RepetitionCounter
    /** Serial-vs-tile-parallel execution policy (output-invariant). */
    ParallelTiles parallelTiles = ParallelTiles::Auto;
    /** Minification filter; the paper's studies all use Trilinear. */
    FilterMode filterMode = FilterMode::Trilinear;
    /**
     * Optional per-fragment hook invoked with the fragment (screen
     * position, attributes), its filtered sample (texel touches) and
     * the texture it sampled. Used by consumers that need screen
     * positions alongside texel accesses, e.g. the multi-generator
     * simulation (core/parallel.hh).
     */
    std::function<void(const Fragment &, const SampleResult &,
                       uint16_t texture)>
        onFragment;
    /**
     * Optional virtual-texturing residency hook, consulted per
     * fragment with the texture, its (u, v) and its computed LOD
     * before sampling. Drives page fetches as a side effect and
     * returns the graceful-degradation decision (VtSampler::hook()).
     * Unset = every texture fully resident (the paper's assumption).
     */
    std::function<VtDecision(uint16_t texture, float u, float v,
                             float lambda)>
        vtResolve;
};

/**
 * Render one frame of @p scene with the given rasterization order.
 *
 * Dispatches between the serial reference renderer and the tile
 * engine per opts.parallelTiles; both produce byte-identical output
 * (tests/test_parallel_render.cc), so the choice only affects
 * wall-clock. TEXCACHE_THREADS governs the engine's worker count.
 */
RenderOutput render(const Scene &scene, const RasterOrder &order,
                    const RenderOptions &opts = RenderOptions{});

/**
 * The serial reference renderer: one triangle at a time, the raster
 * order traversing each triangle's bounding box. This is the
 * byte-identity specification the tile engine (tile_render.hh) is
 * tested against, and the only path supporting the per-fragment hooks.
 */
RenderOutput renderReference(const Scene &scene, const RasterOrder &order,
                             const RenderOptions &opts = RenderOptions{});

/**
 * Register a frame's pipeline statistics (triangles, fragments, texel
 * fetches by filter kind, the sampled-LOD distribution) under @p g as
 * dump-time views; @p s must outlive every dump (stats/stats.hh).
 */
void exportRenderStats(stats::Group &g, const RenderStats &s);

} // namespace texcache

#endif // TEXCACHE_PIPELINE_RENDERER_HH
