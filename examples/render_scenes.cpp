/**
 * @file
 * Example: render the four benchmark scenes to PPM images and print
 * their Table 4.1-style characteristics.
 *
 * Usage: render_scenes [output_dir]
 *
 * This is the visual-verification path the paper describes ("the images
 * allow us to verify that the interpretation of the trace is
 * accurate"): each benchmark is rendered with the full pipeline and the
 * resulting frame is written to <output_dir>/<scene>.ppm.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

using namespace texcache;

int
main(int argc, char **argv)
{
    std::string out_dir = argc > 1 ? argv[1] : ".";

    TextTable table("Benchmark scene characteristics (cf. Table 4.1)");
    table.header({"Scene", "Resolution", "Triangles", "AvgArea(px)",
                  "AvgW", "AvgH", "Textures", "Storage(MB)",
                  "PixelsTextured(M)"});

    for (BenchScene s : allBenchScenes()) {
        Scene scene = makeScene(s);
        RasterOrder order;
        order.dir = paperScanDirection(s);
        RenderOutput out = render(scene, order);

        std::string path = out_dir + "/" + scene.name + ".ppm";
        out.framebuffer.writePpm(path);
        std::cerr << "wrote " << path << "\n";

        table.row({scene.name,
                   std::to_string(scene.screenW) + "x" +
                       std::to_string(scene.screenH),
                   std::to_string(scene.triangles.size()),
                   fmtFixed(out.stats.avgTriangleArea(), 0),
                   fmtFixed(out.stats.avgTriangleWidth(), 0),
                   fmtFixed(out.stats.avgTriangleHeight(), 0),
                   std::to_string(scene.textures.size()),
                   fmtFixed(scene.textureStorageBytes() / 1048576.0, 1),
                   fmtFixed(out.stats.fragments / 1e6, 2)});
    }

    table.print(std::cout);
    return 0;
}
