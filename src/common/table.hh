/**
 * @file
 * Plain-text table formatting for benchmark harness output.
 *
 * The figure/table reproduction binaries print the same rows and series
 * the paper reports; this helper keeps their output aligned and uniform.
 */

#ifndef TEXCACHE_COMMON_TABLE_HH
#define TEXCACHE_COMMON_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace texcache {

/** A simple column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void
    header(std::vector<std::string> cells)
    {
        header_ = std::move(cells);
    }

    /** Append a data row. */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /**
     * Render the table to @p os. When the TEXCACHE_CSV environment
     * variable is set (to anything non-empty), emits CSV instead of
     * the aligned text form, so every figure binary doubles as a
     * plot-data generator.
     */
    void print(std::ostream &os) const;

    /** Render the table as comma-separated values (header + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string fmtFixed(double v, int digits);

/** Format a miss rate (fraction) as a percentage like "1.53%". */
std::string fmtPercent(double fraction, int digits = 2);

/** Format a byte count as "32B", "4KB", "1MB" etc. (power of two). */
std::string fmtBytes(uint64_t bytes);

} // namespace texcache

#endif // TEXCACHE_COMMON_TABLE_HH
