/**
 * @file
 * The live GL context: executes GlApi calls by assembling a Scene for
 * the software pipeline.
 *
 * Primitive assembly follows the GL 1.0 rules: GL_TRIANGLES consumes
 * independent vertex triples, GL_TRIANGLE_STRIP re-uses the previous
 * two vertices with alternating winding, GL_TRIANGLE_FAN pivots on the
 * first vertex. Triangles accumulate in submission order, which the
 * paper's runlength analysis depends on.
 */

#ifndef TEXCACHE_GL_GL_CONTEXT_HH
#define TEXCACHE_GL_GL_CONTEXT_HH

#include <map>
#include <vector>

#include "gl/gl_api.hh"
#include "pipeline/scene_types.hh"

namespace texcache {

/** Executes the GlApi by building a renderable Scene. */
class GlContext : public GlApi
{
  public:
    void viewport(unsigned width, unsigned height) override;
    void loadProjection(const Mat4 &m) override;
    void loadModelView(const Mat4 &m) override;
    GlTexture genTexture() override;
    void bindTexture(GlTexture tex) override;
    void texImage2D(const Image &base) override;
    void begin(GlPrimitive prim) override;
    void texCoord(float u, float v) override;
    void shade(float s) override;
    void vertex(float x, float y, float z) override;
    void end() override;

    /**
     * The scene assembled so far. Textures appear in genTexture
     * order; triangles in submission order.
     */
    const Scene &scene() const { return scene_; }

    /** Move the assembled scene out (the context resets). */
    Scene takeScene();

  private:
    void emitTriangle(const SceneVertex &a, const SceneVertex &b,
                      const SceneVertex &c);

    Scene scene_;
    std::map<GlTexture, uint16_t> textureSlots_; ///< name -> index
    GlTexture nextName_ = 1;
    GlTexture bound_ = 0;
    bool boundValid_ = false;

    bool inPrimitive_ = false;
    GlPrimitive prim_ = GlPrimitive::Triangles;
    SceneVertex current_;                 ///< pending attributes
    std::vector<SceneVertex> assembly_;   ///< vertices of the primitive
};

} // namespace texcache

#endif // TEXCACHE_GL_GL_CONTEXT_HH
