#include "trace/texel_trace.hh"

namespace texcache {

unsigned
packSampleRecords(uint16_t tex, const SampleResult &s, uint64_t *out)
{
    if (s.kind == FilterKind::Nearest) {
        const TexelTouch &t = s.touches[0];
        out[0] = TexelRecord{tex, t.level, t.u, t.v,
                             TouchKind::Nearest}.pack();
        return 1;
    }
    if (s.kind == FilterKind::Bilinear) {
        for (unsigned i = 0; i < 4; ++i) {
            const TexelTouch &t = s.touches[i];
            out[i] = TexelRecord{tex, t.level, t.u, t.v,
                                 TouchKind::Bilinear}.pack();
        }
        return 4;
    }
    for (unsigned i = 0; i < 4; ++i) {
        const TexelTouch &t = s.touches[i];
        out[i] = TexelRecord{tex, t.level, t.u, t.v,
                             TouchKind::TrilinearLower}.pack();
    }
    for (unsigned i = 4; i < 8; ++i) {
        const TexelTouch &t = s.touches[i];
        out[i] = TexelRecord{tex, t.level, t.u, t.v,
                             TouchKind::TrilinearUpper}.pack();
    }
    return 8;
}

void
TexelTrace::appendSample(uint16_t tex, const SampleResult &s)
{
    if (s.kind == FilterKind::Nearest) {
        const TexelTouch &t = s.touches[0];
        append({tex, t.level, t.u, t.v, TouchKind::Nearest});
    } else if (s.kind == FilterKind::Bilinear) {
        for (unsigned i = 0; i < 4; ++i) {
            const TexelTouch &t = s.touches[i];
            append({tex, t.level, t.u, t.v, TouchKind::Bilinear});
        }
    } else {
        for (unsigned i = 0; i < 4; ++i) {
            const TexelTouch &t = s.touches[i];
            append({tex, t.level, t.u, t.v, TouchKind::TrilinearLower});
        }
        for (unsigned i = 4; i < 8; ++i) {
            const TexelTouch &t = s.touches[i];
            append({tex, t.level, t.u, t.v, TouchKind::TrilinearUpper});
        }
    }
}

} // namespace texcache
