/**
 * @file
 * Ablation for the paper's future-work question (section 8): how do
 * compressed texture representations (Beers et al. [2]) interact with
 * a texture cache?
 *
 * The compressed layout stores each 8x8 block at a fixed rate; the
 * cache holds compressed data and decompression happens between cache
 * and filter. Two effects compound: (i) each line covers `ratio` times
 * more texture area, shrinking the working set; (ii) each miss fetches
 * the same line size but it carries more texels, so the bandwidth per
 * fragment drops. The harness reports miss rate and memory bandwidth
 * at the Table 7.1 operating point.
 */

#include "bench/bench_util.hh"
#include "cache/bandwidth.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    MachineModel machine;
    constexpr unsigned kLine = 128;
    const CacheConfig cache{32 * 1024, kLine, 2};

    struct Choice
    {
        std::string label;
        LayoutParams params;
    };
    std::vector<Choice> choices;
    {
        LayoutParams plain;
        plain.kind = LayoutKind::Blocked;
        plain.blockW = plain.blockH = 8;
        choices.push_back({"uncompressed 8x8", plain});
        for (unsigned ratio : {2u, 4u, 8u}) {
            LayoutParams c;
            c.kind = LayoutKind::CompressedBlocked;
            c.blockW = c.blockH = 8;
            c.compressionRatio = ratio;
            choices.push_back(
                {"compressed " + std::to_string(ratio) + ":1", c});
        }
    }

    TextTable table("Section 8 extension: rendering from compressed "
                    "textures, 32KB 2-way, 128B lines, tiled 8x8");
    table.header({"Scene", "Layout", "MissRate", "BW (MB/s)",
                  "Reduction vs uncached"});

    for (BenchScene s : allBenchScenes()) {
        const RenderOutput &out =
            store().output(s, sceneOrder(s, /*tiled=*/true, 8));
        for (const Choice &c : choices) {
            SceneLayout layout(store().scene(s), c.params);
            CacheStats stats = runCache(out.trace, layout, cache);
            double bw =
                machine.cachedBandwidth(stats.missRate(), kLine);
            table.row({benchSceneName(s), c.label,
                       fmtPercent(stats.missRate()),
                       fmtFixed(bw / 1e6, 0),
                       fmtFixed(machine.uncachedBandwidth() / bw, 1) +
                           "x"});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpectation: each doubling of the compression "
                 "ratio roughly halves miss rate and bandwidth (one "
                 "line covers twice the texture area).\n";
    return 0;
}
