#include "service/engine.hh"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <tuple>

#include "common/json.hh"
#include "common/logging.hh"
#include "perf/perf_counters.hh"
#include "prof/prof.hh"
#include "stats/prometheus.hh"
#include "tracing/tracing.hh"

namespace texcache {
namespace service {

namespace {

using ConfigKey = std::tuple<uint64_t, unsigned, unsigned>;

ConfigKey
keyOf(const CacheConfig &c)
{
    return {c.sizeBytes, c.lineBytes, c.assoc};
}

// Span-name ids for the per-request async lifetimes. Interned once
// per process (the name table survives tracing::configure()).
uint16_t
requestSpan()
{
    static uint16_t id = tracing::nameId("svc.request");
    return id;
}

uint16_t
queueSpan()
{
    static uint16_t id = tracing::nameId("svc.queue");
    return id;
}

uint16_t
executeSpan()
{
    static uint16_t id = tracing::nameId("svc.execute");
    return id;
}

double
parseSlowReqMs()
{
    const char *env = std::getenv("TEXCACHE_SLOW_REQ_MS");
    if (!env || !*env)
        return -1.0;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    fatal_if(end == env || *end != '\0' || !(v >= 0.0),
             "TEXCACHE_SLOW_REQ_MS='", env,
             "' is not a non-negative millisecond threshold");
    return v;
}

std::string
controlOk(const char *kind)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("status", "ok");
    w.kv("kind", kind);
    w.endObject();
    os << "\n";
    return os.str();
}

/** The "profile" control response: the profiler's per-request
 *  document wrapped in the uniform control envelope. Stack and tag
 *  caps keep the body well under the socket frame bound. */
std::string
profileText()
{
    std::ostringstream body;
    prof::writeProfileJson(body, /*max_stacks=*/20, /*max_tags=*/32);
    std::string doc = body.str();
    while (!doc.empty() && doc.back() == '\n')
        doc.pop_back();
    return "{\"status\":\"ok\",\"kind\":\"profile\",\"profile\":" +
           doc + "}\n";
}

/** Publish the id of the batch now executing to the profiler, so
 *  every sample taken anywhere in the process during execution -
 *  dispatcher and sweep-pool workers alike - attributes to it.
 *  Batches run serially on one dispatcher, which is what makes the
 *  process-global tag correct; folded members share the head id. */
struct ScopedRequestTag
{
    explicit ScopedRequestTag(uint64_t id) { prof::setRequestTag(id); }
    ~ScopedRequestTag() { prof::setRequestTag(0); }
};

} // namespace

ServiceEngine::ServiceEngine(TraceStore &store)
    : ServiceEngine(store, Options{})
{}

ServiceEngine::ServiceEngine(TraceStore &store, Options opts)
    : store_(store), opts_(opts), paused_(opts.startPaused),
      accepted_(statsRoot_.scalar("accepted",
                                  "requests admitted to the queue")),
      rejectedFull_(statsRoot_.scalar(
          "rejected_queue_full", "requests refused at full depth")),
      rejectedParse_(statsRoot_.scalar("rejected_parse",
                                       "bodies that were not JSON")),
      rejectedBad_(statsRoot_.scalar(
          "rejected_bad_request", "requests failing validation")),
      rejectedShutdown_(statsRoot_.scalar(
          "rejected_shutdown", "requests refused while draining")),
      controlRequests_(statsRoot_.scalar(
          "control", "ping/stats/shutdown control requests")),
      batchable_(statsRoot_.scalar("batchable",
                                   "accepted sweep-kind requests")),
      batches_(statsRoot_.scalar("batches",
                                 "shared-replay passes executed")),
      foldedRequests_(statsRoot_.scalar(
          "folded", "requests served from multi-request batches")),
      slowRequests_(statsRoot_.scalar(
          "slow_requests",
          "requests over the TEXCACHE_SLOW_REQ_MS threshold")),
      queueDepthDist_(statsRoot_.distribution(
          "queue_depth", "depth observed at each enqueue")),
      latencyUs_(statsRoot_.distribution(
          "latency_us", "enqueue-to-response microseconds")),
      perfAvailable_(statsRoot_.group("perf").scalar(
          "available", "host perf counters opened (0/1)")),
      cyclesPerRequest_(statsRoot_.findGroup("perf")->distribution(
          "cycles_per_request",
          "host cycles per request, batch delta / members")),
      llcMissesPerRequest_(statsRoot_.findGroup("perf")->distribution(
          "llc_misses_per_request",
          "host LLC misses per request, batch delta / members"))
{
    slowReqMs_ = parseSlowReqMs();
    perfAvailable_.set(perf::available() ? 1 : 0);
    statsRoot_.formula("fold_factor",
                       "batchable requests per executed batch", [this] {
                           uint64_t b = batches_.value();
                           return b ? double(batchable_.value()) / b
                                    : 0.0;
                       });
    panic_if(opts_.queueDepth == 0, "queue depth must be positive");
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

ServiceEngine::~ServiceEngine()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
        accepting_ = false;
    }
    cv_.notify_all();
    dispatcher_.join();
}

std::future<std::string>
ServiceEngine::submit(std::string_view body)
{
    std::promise<std::string> promise;
    std::future<std::string> future = promise.get_future();

    ServiceRequest req;
    RequestError err = parseRequest(body, req);
    if (err) {
        std::lock_guard<std::mutex> lk(mutex_);
        if (err.code == RequestError::Code::Parse)
            ++rejectedParse_;
        else
            ++rejectedBad_;
        promise.set_value(err.toJson());
        return future;
    }

    if (req.control()) {
        ServiceRequest::Kind deferred = ServiceRequest::Kind::Stats;
        std::string resp;
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ++controlRequests_;
            switch (req.kind) {
              case ServiceRequest::Kind::Ping:
                resp = controlOk("ping");
                break;
              case ServiceRequest::Kind::Shutdown:
                accepting_ = false;
                shutdownReq_ = true;
                resp = controlOk("shutdown");
                break;
              default:
                deferred = req.kind; // render outside the lock
                break;
            }
        }
        // Snapshot/render outside the lock held above: metrics and
        // stats re-take mutex_ briefly for a consistent capture, the
        // profile reads its own lock-free ring, and none of them ever
        // blocks the dispatcher on rendering.
        if (resp.empty()) {
            if (deferred == ServiceRequest::Kind::Metrics)
                resp = metricsText();
            else if (deferred == ServiceRequest::Kind::Profile)
                resp = profileText();
            else
                resp = statsJson();
        }
        promise.set_value(std::move(resp));
        return future;
    }

    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!accepting_) {
            ++rejectedShutdown_;
            promise.set_value(
                RequestError::shuttingDown("daemon is draining")
                    .toJson());
            return future;
        }
        if (queue_.size() >= opts_.queueDepth) {
            ++rejectedFull_;
            promise.set_value(
                RequestError::queueFull(
                    "queue is at depth " +
                    std::to_string(opts_.queueDepth) +
                    "; retry later")
                    .toJson());
            return future;
        }
        ++accepted_;
        if (req.batchable())
            ++batchable_;
        queueDepthDist_.sample(queue_.size());
        Pending p;
        p.req = std::move(req);
        p.promise = std::move(promise);
        p.enqueued = std::chrono::steady_clock::now();
        p.id = ++nextId_;
        if (tracing::enabled(tracing::kSpans)) {
            // The request's whole life plus its time-in-queue phase,
            // correlated by the admission id; the queue span ends when
            // the dispatcher collects it into a batch.
            tracing::asyncBegin(requestSpan(), p.id,
                                uint32_t(queue_.size()));
            tracing::asyncBegin(queueSpan(), p.id);
        }
        queue_.push_back(std::move(p));
    }
    cv_.notify_all();
    return future;
}

void
ServiceEngine::pause()
{
    std::lock_guard<std::mutex> lk(mutex_);
    paused_ = true;
}

void
ServiceEngine::resume()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

void
ServiceEngine::beginShutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        accepting_ = false;
    }
    cv_.notify_all();
}

bool
ServiceEngine::shutdownRequested() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return shutdownReq_;
}

void
ServiceEngine::drain()
{
    std::unique_lock<std::mutex> lk(mutex_);
    idleCv_.wait(lk, [this] {
        return queue_.empty() && !busy_;
    });
}

size_t
ServiceEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return queue_.size();
}

std::string
ServiceEngine::statsJson() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::ostringstream os;
    statsRoot_.dumpJson(os);
    return os.str();
}

stats::Snapshot
ServiceEngine::snapshot() const
{
    stats::Snapshot snap;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        snap = stats::Snapshot::capture(statsRoot_);
        snap.gauge("queue_depth_now", double(queue_.size()));
        snap.gauge("busy", busy_ ? 1.0 : 0.0);
        snap.gauge("accepting", accepting_ ? 1.0 : 0.0);
    }
    // Host counter totals live outside the stats tree (process-wide,
    // not engine state) and need no lock.
    perf::Reading r = perf::read();
    if (r.available) {
        snap.counter("host.cycles", double(r.cycles));
        snap.counter("host.instructions", double(r.instructions));
        snap.counter("host.llc_loads", double(r.llcLoads));
        snap.counter("host.llc_misses", double(r.llcMisses));
        snap.counter("host.branch_misses", double(r.branchMisses));
    }
    snap.counter("host.simulated_accesses",
                 double(perf::simulatedAccesses()));
    // Trace-ring health: per-category recorded/dropped event counts
    // across every thread ring, plus the trace store's render/disk
    // accounting - all process-wide counters outside the stats tree.
    tracing::CategoryCounts cc = tracing::categoryCounts();
    for (unsigned i = 0; i < tracing::CategoryCounts::kCount; ++i) {
        std::string base =
            std::string("tracing.") + tracing::categoryName(i);
        snap.counter(base + ".recorded_events", double(cc.recorded[i]));
        snap.counter(base + ".dropped_events", double(cc.dropped[i]));
    }
    snap.counter("trace_store.renders", double(store_.renders()));
    snap.counter("trace_store.disk_hits", double(store_.diskHits()));
    snap.gauge("trace_store.render_wall_ms", store_.renderMillis());
    snap.unixMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    return snap;
}

std::string
ServiceEngine::metricsText() const
{
    return stats::expositionText(snapshot(), "texcache_service");
}

void
ServiceEngine::dispatchLoop()
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        cv_.wait(lk, [this] {
            return stopping_ || (!queue_.empty() && !paused_);
        });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        // Give concurrent clients one batch window to coalesce with
        // the head request before collecting (skipped when draining -
        // nothing new can arrive).
        if (opts_.batchWindowMs && queue_.front().req.batchable() &&
            !stopping_ && accepting_) {
            cv_.wait_for(
                lk, std::chrono::milliseconds(opts_.batchWindowMs),
                [this] { return stopping_; });
            if (queue_.empty())
                continue;
        }

        std::vector<Pending> batch;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        if (batch.front().req.batchable()) {
            const std::string key = batch.front().req.batchKey();
            for (auto it = queue_.begin(); it != queue_.end();) {
                if (it->req.batchable() && it->req.batchKey() == key) {
                    batch.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        busy_ = true;
        lk.unlock();
        runBatch(std::move(batch));
        lk.lock();
        busy_ = false;
        idleCv_.notify_all();
    }
}

void
ServiceEngine::runBatch(std::vector<Pending> batch)
{
    ScopedRequestTag tag(batch.front().id);
    uint64_t batchSeq = 0;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++batches_;
        batchSeq = batches_.value();
        if (batch.size() > 1)
            foldedRequests_ += batch.size();
    }

    if (tracing::enabled(tracing::kSpans)) {
        // Queue phase over, execute phase begins, for every member at
        // once - a fold shows up as N execute spans sharing one batch
        // sequence number in their args.
        for (const Pending &p : batch) {
            tracing::asyncEnd(queueSpan(), p.id);
            tracing::asyncBegin(executeSpan(), p.id,
                                uint32_t(batchSeq));
        }
    }

    // Host-counter cost of this batch, spread over its members. The
    // counters are process-wide, but batches execute serially on this
    // one dispatcher thread (connection threads only block on
    // futures), so the delta is attributable to the batch.
    perf::Reading before;
    if (perf::available())
        before = perf::read();
    auto chargeBatch = [&] {
        if (!before.available)
            return;
        perf::Reading d = perf::read().since(before);
        std::lock_guard<std::mutex> lk(mutex_);
        cyclesPerRequest_.sample(d.cycles / batch.size());
        llcMissesPerRequest_.sample(d.llcMisses / batch.size());
    };

    if (batch.size() == 1 && !batch.front().req.batchable()) {
        std::string body = runServiceRequest(store_, batch.front().req);
        chargeBatch();
        finish(batch.front(), std::move(body));
        return;
    }

    // Shared replay over the union of every member's configurations.
    // runCacheSweep() is exact for any partitioning, so each member's
    // manifest matches the direct path byte for byte.
    std::map<ConfigKey, size_t> index;
    std::vector<CacheConfig> uni;
    for (const Pending &p : batch) {
        for (const CacheConfig &c : p.req.configs) {
            if (index.try_emplace(keyOf(c), uni.size()).second)
                uni.push_back(c);
        }
    }

    const ServiceRequest &head = batch.front().req;
    const TexelTrace &trace = store_.trace(head.scene, head.order);
    SceneLayout layout(store_.scene(head.scene), head.layout);
    std::vector<CacheStats> stats = runCacheSweep(trace, layout, uni);
    chargeBatch();

    for (Pending &p : batch) {
        std::vector<CacheStats> mine;
        mine.reserve(p.req.configs.size());
        for (const CacheConfig &c : p.req.configs)
            mine.push_back(stats[index.at(keyOf(c))]);
        finish(p, buildSweepManifest(p.req, mine));
    }
}

void
ServiceEngine::finish(Pending &p, std::string body)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - p.enqueued)
                  .count();
    double ms = double(us) / 1000.0;
    bool slow = slowReqMs_ >= 0.0 && ms >= slowReqMs_;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        latencyUs_.sample(static_cast<uint64_t>(us));
        if (slow)
            ++slowRequests_;
    }
    if (slow) {
        // One structured line per slow request, composed first so the
        // stderr write is a single insertion (interleaving-safe
        // enough for line-oriented consumers).
        std::ostringstream os;
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("event", "slow_request");
        w.kv("id", p.id);
        w.kv("kind", p.req.kindName());
        w.kv("name", p.req.name);
        w.kv("latency_ms", ms);
        w.kv("threshold_ms", slowReqMs_);
        w.endObject();
        os << "\n";
        std::cerr << os.str();
    }
    if (tracing::enabled(tracing::kSpans)) {
        tracing::asyncEnd(executeSpan(), p.id);
        tracing::asyncEnd(requestSpan(), p.id);
    }
    p.promise.set_value(std::move(body));
}

} // namespace service
} // namespace texcache
