/**
 * @file
 * Prometheus text-exposition rendering of a stats Snapshot.
 *
 * Target format is the classic text exposition (version 0.0.4): one
 * `# TYPE` comment per metric family followed by its sample lines.
 * The mapping from the registry's kinds:
 *
 *  - Snapshot Counter -> `counter`; Gauge -> `gauge`;
 *  - Distribution     -> `histogram` with cumulative `_bucket` lines.
 *    The registry's log2 bucket k covers [2^(k-1), 2^k) (bucket 0 is
 *    the literal value 0), so bucket k's inclusive upper bound is
 *    le="2^k - 1" for integer samples, with le="0" for bucket 0 and a
 *    trailing le="+Inf"; `_sum` and `_count` follow. Because
 *    Prometheus quantile math over log2 buckets is coarse, the
 *    registry's own interpolated p50/p95/p99 are also emitted as
 *    companion gauges (`<name>_p50` ...).
 *
 * Metric names are `<prefix>_<path>` with '.' and every character
 * outside [a-zA-Z0-9_:] mangled to '_'. Values are never NaN/inf
 * (non-finite inputs render as 0), matching the registry's JSON
 * contract. Output is deterministic: entry order is snapshot order.
 */

#ifndef TEXCACHE_STATS_PROMETHEUS_HH
#define TEXCACHE_STATS_PROMETHEUS_HH

#include <iosfwd>
#include <string>
#include <string_view>

namespace texcache {
namespace stats {

class Snapshot;

/** Mangle a dotted stat path into a legal metric name (no prefix). */
std::string promMetricName(std::string_view path);

/** Render @p snap as exposition text onto @p os. */
void writeExposition(std::ostream &os, const Snapshot &snap,
                     std::string_view prefix = "texcache");

/** writeExposition into a string. */
std::string expositionText(const Snapshot &snap,
                           std::string_view prefix = "texcache");

} // namespace stats
} // namespace texcache

#endif // TEXCACHE_STATS_PROMETHEUS_HH
