/** @file Tests for the 4-bank cache port model (paper section 7.1.2). */

#include <gtest/gtest.h>

#include "cache/bank_model.hh"

using namespace texcache;

namespace {

/** Build the 2x2 quad anchored at (u, v) on one level. */
void
quadAt(unsigned u, unsigned v, TexelTouch out[4])
{
    out[0] = {0, static_cast<uint16_t>(u), static_cast<uint16_t>(v)};
    out[1] = {0, static_cast<uint16_t>(u + 1),
              static_cast<uint16_t>(v)};
    out[2] = {0, static_cast<uint16_t>(u),
              static_cast<uint16_t>(v + 1)};
    out[3] = {0, static_cast<uint16_t>(u + 1),
              static_cast<uint16_t>(v + 1)};
}

} // namespace

TEST(BankModel, MortonIsConflictFreeForEveryQuadPhase)
{
    // The paper's claim: morton 2x2 interleaving serves any aligned or
    // unaligned 2x2 quad in one cycle.
    BankModel model(BankInterleave::Morton);
    TexelTouch quad[4];
    for (unsigned v = 0; v < 16; ++v)
        for (unsigned u = 0; u < 16; ++u) {
            quadAt(u, v, quad);
            ASSERT_EQ(model.accessQuad(quad), 1u)
                << "quad at (" << u << "," << v << ")";
        }
    EXPECT_EQ(model.conflictCycles(), 0u);
    EXPECT_DOUBLE_EQ(model.cyclesPerQuad(), 1.0);
}

TEST(BankModel, RowMajorConflictsWhenRowsAlias)
{
    // With a row width divisible by 4, texel (u, v) and (u, v+1) land
    // in the same bank -> every quad needs 2 cycles.
    BankModel model(BankInterleave::RowMajor, /*row_width_texels=*/8);
    TexelTouch quad[4];
    quadAt(0, 0, quad);
    EXPECT_EQ(model.accessQuad(quad), 2u);
    quadAt(3, 5, quad);
    EXPECT_EQ(model.accessQuad(quad), 2u);
    EXPECT_GT(model.conflictCycles(), 0u);
}

TEST(BankModel, CyclesPerQuadAggregates)
{
    BankModel model(BankInterleave::RowMajor, 8);
    TexelTouch quad[4];
    for (unsigned i = 0; i < 10; ++i) {
        quadAt(i, i, quad);
        model.accessQuad(quad);
    }
    EXPECT_EQ(model.quads(), 10u);
    EXPECT_EQ(model.cycles(), 20u); // 2 cycles each
    EXPECT_DOUBLE_EQ(model.cyclesPerQuad(), 2.0);
}
