/**
 * @file
 * The Flight benchmark: satellite-textured mountainous terrain viewed
 * from low altitude (paper Fig 4.1).
 *
 * Published characteristics targeted (Table 4.1): 1280x1024, ~9152
 * triangles, average triangle area ~294 px, 15 textures, ~56 MB of
 * texture. The defining property is a large, continuous variation in
 * level-of-detail from the near ground plane to the horizon, which
 * fragments mip-map accesses and gives Flight the highest cold miss
 * rate of the four scenes.
 */

#include <cmath>

#include "img/procedural.hh"
#include "scene/benchmarks.hh"
#include "scene/mesh_util.hh"

namespace texcache {

namespace {

// Terrain extent in world units and grid resolution. 70 x 66 quads =
// 9240 triangles (paper: 9152). Sectors form a 5 x 3 grid, one texture
// per sector (15 textures).
constexpr float kExtent = 4096.0f;
constexpr unsigned kQuadsX = 70;
constexpr unsigned kQuadsZ = 66;
constexpr unsigned kSectorsX = 5;
constexpr unsigned kSectorsZ = 3;
constexpr float kAmplitude = 620.0f;

float
terrainHeight(float x, float z)
{
    float nx = x / kExtent * 6.0f;
    float nz = z / kExtent * 6.0f;
    float n = valueNoise(nx, nz, 6, /*seed=*/1234u);
    // Sharpen ridges a little for a mountainous look.
    return (n * n) * kAmplitude;
}

} // namespace

Scene
makeFlightScene()
{
    return makeFlightSceneAt(0.0f);
}

Scene
makeFlightSceneAt(float time)
{
    Scene scene;
    scene.name = "Flight";
    scene.screenW = 1280;
    scene.screenH = 1024;

    // 8 large + 7 medium satellite textures: ~55 MB of mip-mapped
    // storage (paper: 56 MB).
    for (unsigned i = 0; i < 15; ++i) {
        unsigned size = i < 8 ? 1024 : 512;
        scene.textures.emplace_back(makeSatellite(size, 7000u + i));
    }

    Vec3 light{0.4f, -1.0f, 0.3f};

    // Emit the grid sector by sector so each texture's accesses form
    // one long run (section 5.2.3 measures these runlengths).
    const unsigned quads_per_sx = kQuadsX / kSectorsX; // 14
    const unsigned quads_per_sz = kQuadsZ / kSectorsZ; // 22

    auto grid_pos = [&](unsigned gi, unsigned gj) {
        float x = kExtent * static_cast<float>(gi) / kQuadsX;
        float z = kExtent * static_cast<float>(gj) / kQuadsZ;
        return Vec3{x, terrainHeight(x, z), z};
    };

    for (unsigned sz = 0; sz < kSectorsZ; ++sz) {
        for (unsigned sx = 0; sx < kSectorsX; ++sx) {
            uint16_t tex = static_cast<uint16_t>(sz * kSectorsX + sx);
            for (unsigned j = 0; j < quads_per_sz; ++j) {
                for (unsigned i = 0; i < quads_per_sx; ++i) {
                    unsigned gi = sx * quads_per_sx + i;
                    unsigned gj = sz * quads_per_sz + j;
                    Vec3 p00 = grid_pos(gi, gj);
                    Vec3 p10 = grid_pos(gi + 1, gj);
                    Vec3 p11 = grid_pos(gi + 1, gj + 1);
                    Vec3 p01 = grid_pos(gi, gj + 1);

                    // Sector-local texture coordinates in [0, 1].
                    auto uv = [&](unsigned a, unsigned b) {
                        return Vec2{
                            static_cast<float>(a) / quads_per_sx,
                            static_cast<float>(b) / quads_per_sz};
                    };
                    Vec2 t00 = uv(i, j), t10 = uv(i + 1, j);
                    Vec2 t11 = uv(i + 1, j + 1), t01 = uv(i, j + 1);

                    Vec3 n = (p10 - p00).cross(p01 - p00) * -1.0f;
                    float shade = lambertShade(n, light);
                    SceneVertex v00{p00, t00, shade};
                    SceneVertex v10{p10, t10, shade};
                    SceneVertex v11{p11, t11, shade};
                    SceneVertex v01{p01, t01, shade};
                    scene.triangles.push_back({{v00, v10, v11}, tex});
                    scene.triangles.push_back({{v00, v11, v01}, tex});
                }
            }
        }
    }

    // Low flight over the terrain looking toward the far edge: near
    // quads project large (low LOD), the horizon tiny (high LOD).
    // `time` advances the aircraft along -z (one unit ~ one frame at
    // ~60 world units per frame), for inter-frame locality studies.
    float eye_x = kExtent * 0.5f;
    float eye_z = kExtent * 0.97f - 60.0f * time;
    float eye_y = terrainHeight(eye_x, eye_z) + 230.0f;
    Vec3 eye{eye_x, eye_y, eye_z};
    Vec3 at{kExtent * 0.5f, -420.0f, kExtent * 0.35f};
    scene.view = Mat4::lookAt(eye, at, Vec3{0, 1, 0});
    scene.proj = Mat4::perspective(/*fovy=*/1.05f,
                                   /*aspect=*/1280.0f / 1024.0f,
                                   /*near=*/2.0f, /*far=*/12000.0f);
    return scene;
}

} // namespace texcache
