/**
 * @file
 * Low-overhead event tracing: per-thread ring buffers of typed events.
 *
 * The tracer is process-global and off by default. TEXCACHE_TRACE
 * enables categories ("spans,misses,texels,fetches" or "all"),
 * TEXCACHE_TRACE_SAMPLE=1/N samples the high-frequency categories
 * (misses, texels) deterministically - every Nth emitted event per
 * thread is kept - and TEXCACHE_TRACE_BUF bounds each thread's ring
 * (default 1M events); events beyond the bound are dropped and
 * counted, never silently lost.
 *
 * Hot-path contract: when a category is disabled, the instrumentation
 * site pays exactly one load-and-test of a plain global mask
 * (enabled()) and nothing else. Emitters are out of line and only
 * reached when tracing is on. Bench stdout is never touched: dumps go
 * to files, paths are inform()ed on stderr, and the run manifest
 * records the file paths plus drop/sample accounting.
 *
 * Dump sinks (trace_sink.cc):
 *  - Chrome trace-event JSON (chrome://tracing / Perfetto): timeline
 *    spans per thread in the wall-clock process, vt fetch latencies in
 *    a separate sim-tick process;
 *  - the binary event log (trace_format.hh) that tools/texcache-report
 *    folds into screen/texture-space miss heatmaps and time series.
 */

#ifndef TEXCACHE_TRACING_TRACING_HH
#define TEXCACHE_TRACING_TRACING_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "tracing/trace_format.hh"

namespace texcache {
namespace tracing {

/**
 * Enabled-category mask. Initialized from TEXCACHE_TRACE before
 * main() and only changed by configure(); hot paths read it with a
 * plain (non-atomic) load, which is safe because it is stable while
 * worker threads run.
 */
extern uint32_t gMask;

/** The one branch every disabled instrumentation site pays. */
inline bool
enabled(uint32_t categories)
{
    return (gMask & categories) != 0;
}

/** Any category at all on? */
inline bool
active()
{
    return gMask != 0;
}

/**
 * Per-thread texel context: the screen pixel and texture coordinates
 * the addresses now being replayed came from. Replay drivers that
 * know the fragment (examples/traced_frame) publish it so CacheMiss
 * events carry spatial coordinates; plain trace replays leave it at
 * the kNoContext sentinel and their events still carry addresses.
 */
struct TexelContext
{
    uint32_t screen = kNoContext;   ///< x << 16 | y
    uint32_t texLevel = kNoContext; ///< texture << 16 | level
    uint32_t uv = 0;                ///< u << 16 | v (level coords)
};

extern thread_local TexelContext tlsContext;

/** Sentinel span id: no span active (or span context disabled). */
constexpr uint16_t kNoSpanId = 0xffff;

/**
 * Per-thread stack of active span name ids, maintained only while
 * kSpanCtx is in the mask (the sampling profiler arms it via
 * enableSpanContext()). Written by spanBegin/spanEnd on the owning
 * thread and read *asynchronously* by the profiler's SIGPROF handler
 * on the same thread, so updates order the id store before the depth
 * store with a signal fence; the handler then always sees a
 * consistent prefix of the stack.
 */
struct SpanStack
{
    static constexpr uint32_t kMaxDepth = 32;
    uint32_t depth = 0;
    uint16_t ids[kMaxDepth] = {};
};

extern thread_local SpanStack tlsSpanStack;

/**
 * The innermost active span's name id on this thread, or kNoSpanId.
 * Async-signal-safe: plain TLS loads only. If spans nest deeper than
 * SpanStack::kMaxDepth, the deepest recorded ancestor is returned.
 */
inline uint16_t
currentSpanId()
{
    uint32_t d = tlsSpanStack.depth;
    if (d == 0)
        return kNoSpanId;
    if (d > SpanStack::kMaxDepth)
        d = SpanStack::kMaxDepth;
    return tlsSpanStack.ids[d - 1];
}

/**
 * Arm/disarm span-context maintenance (the kSpanCtx mask bit) without
 * touching the event categories. Used by the profiler so span
 * attribution works even when event tracing itself is off.
 */
void enableSpanContext();
void disableSpanContext();

/** Copy of the interned span-name table (id -> name). */
std::vector<std::string> spanNames();

/** Publish the current fragment/texel (gate with enabled() first). */
inline void
setTexelContext(uint16_t x, uint16_t y, uint16_t tex, uint16_t level,
                uint16_t u, uint16_t v)
{
    tlsContext.screen = (uint32_t(x) << 16) | y;
    tlsContext.texLevel = (uint32_t(tex) << 16) | level;
    tlsContext.uv = (uint32_t(u) << 16) | v;
}

inline void
clearTexelContext()
{
    tlsContext = TexelContext{};
}

/**
 * Intern a span name, returning its stable id for this trace run.
 * Call once per site (function-local static); takes a lock.
 */
uint16_t nameId(std::string_view name);

/** Begin/end a wall-domain span on this thread (category kSpans). */
void spanBegin(uint16_t name, uint64_t detail = 0);
void spanEnd(uint16_t name);

/**
 * Begin/end a wall-domain *async* span (category kSpans): a lifetime
 * that may start on one thread and finish on another, matched by
 * (name, id) rather than thread nesting - the shape of a service
 * request travelling admission -> queue -> dispatcher -> response.
 * Renders as Perfetto nestable async events ("b"/"e") correlated by
 * id, so all phases of one request line up on one async track.
 */
void asyncBegin(uint16_t name, uint64_t id, uint32_t detail = 0);
void asyncEnd(uint16_t name, uint64_t id);

/** RAII span; no-op (one branch) when spans are disabled. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(uint16_t name, uint64_t detail = 0)
        : name_(name), on_(enabled(kSpans | kSpanCtx))
    {
        if (on_)
            spanBegin(name_, detail);
    }

    ~ScopedSpan()
    {
        if (on_)
            spanEnd(name_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    uint16_t name_;
    bool on_;
};

/**
 * Record a cache miss (and, under kTexels, the matching access
 * event). Sampled by TEXCACHE_TRACE_SAMPLE. @p tag identifies the
 * simulator (kTagL1, ...); kTagSilent suppresses emission.
 */
void cacheMiss(uint64_t addr, MissClass cls, uint16_t tag);

/** Record a cache hit under kTexels (sampled). */
void cacheHit(uint64_t addr, uint16_t tag);

/** Record a vt fetch-queue event in the sim-tick domain. */
void fetchEvent(EventKind kind, uint64_t page, uint64_t tick,
                uint32_t payload);

/** Tracer configuration (tests and explicit drivers). */
struct TraceConfig
{
    uint32_t mask = 0;
    uint64_t sampleN = 1;    ///< keep every Nth miss/texel event
    uint64_t capacity = 1ull << 20; ///< events per thread ring
};

/**
 * Re-arm the tracer: drop all buffered events and rings, reset the
 * epoch and name table, and apply @p config. Must not race with
 * threads that are emitting; tests and single-threaded drivers only.
 */
void configure(const TraceConfig &config);

/** The configuration currently in force (env-derived by default). */
TraceConfig currentConfig();

/** Events currently buffered across all rings (dump-time view). */
uint64_t recordedCount();

/** Events dropped to full rings across all threads. */
uint64_t droppedCount();

/** Per-category ring health, aggregated across all thread rings. */
struct CategoryCounts
{
    static constexpr unsigned kCount = 4;
    uint64_t recorded[kCount] = {}; ///< events buffered, by category
    uint64_t dropped[kCount] = {};  ///< events lost to full rings
};

/** "spans", "misses", "texels", "fetches" for indices 0..3. */
const char *categoryName(unsigned index);

/** Snapshot the per-category recorded/dropped counters. */
CategoryCounts categoryCounts();

/**
 * Snapshot every buffered event, ring by ring in registration order
 * (within a ring, emission order). Test/inspection helper.
 */
std::vector<Event> snapshotEvents();

/** Write the Chrome trace-event JSON document for the buffered run. */
void writeChromeTrace(std::ostream &os);

/** Write the binary event log (trace_format.hh container). */
void writeEventLog(std::ostream &os);

/** Where one dump landed, plus its accounting. */
struct DumpInfo
{
    std::string chromePath;
    std::string eventsPath;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    uint64_t sampleN = 1;
};

/**
 * Write TRACE_<name>.chrome.json and TRACE_<name>.events.bin under
 * TEXCACHE_STATS_DIR (default: cwd), reporting both paths via
 * inform() on stderr. Call once at process end; buffered events are
 * kept so a later snapshot still sees them.
 */
DumpInfo dumpToFiles(const std::string &name);

} // namespace tracing
} // namespace texcache

#endif // TEXCACHE_TRACING_TRACING_HH
