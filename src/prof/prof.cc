#include "prof/prof.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include <cxxabi.h>
#include <dirent.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "tracing/tracing.hh"

// Old glibc spells the SIGEV_THREAD_ID target field only through the
// union member; newer ones provide the POSIX-ish alias.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace texcache {
namespace prof {

namespace {

/**
 * One ring slot, guarded by a per-slot sequence counter. The writer
 * of global sample number n (landing in slot n % capacity) stores
 * seq = 2n+1, the payload, then seq = 2n+2 (release); a reader
 * accepts the slot for sample n only if it observes 2n+2 before and
 * after copying. Writers never block: a slot being overwritten is
 * simply unreadable until the new sample is complete. Two handlers
 * claim distinct n via fetch_add, so they collide on a slot only
 * when exactly `capacity` samples apart - at which point the older
 * sample was due for overwrite anyway.
 */
struct Slot
{
    std::atomic<uint64_t> seq{0};
    Sample s;
};

struct State
{
    std::atomic<bool> armed{false};
    std::atomic<uint64_t> next{0}; ///< samples ever claimed
    std::atomic<uint64_t> tag{0};  ///< current request id (0 = none)
    Slot *slots = nullptr;         ///< never freed; see start()
    uint64_t capacity = 0;
    unsigned hz = 0;
    pid_t pid = 0;

    std::thread watcher;
    std::atomic<bool> watcherRun{false};
    std::map<pid_t, timer_t> timers; ///< watcher/stop only
    std::mutex mu;                   ///< start/stop serialization
};

// Deliberately leaked: when the env arms the profiler for the whole
// process life, nothing calls stop() before exit, and destroying a
// State with a joinable watcher (or live timers firing into a torn-
// down handler) would terminate. Static-destruction order is a
// minefield a profiler must not stand in.
State &gState = *new State;

/** Async-signal-safe read of @p len bytes at @p addr; false on any
 *  fault or short read (the EFAULT-instead-of-crash trick that makes
 *  walking an untrusted frame chain safe). */
bool
readMem(uint64_t addr, void *dst, size_t len)
{
    struct iovec local = {dst, len};
    struct iovec remote = {reinterpret_cast<void *>(addr), len};
    return syscall(SYS_process_vm_readv, gState.pid, &local, 1ul,
                   &remote, 1ul, 0ul) == static_cast<ssize_t>(len);
}

/** Frames must advance upward but stay within a sane stack extent. */
constexpr uint64_t kMaxFrameSpan = 1ull << 24;

void
onSigprof(int, siginfo_t *, void *uctx)
{
    if (!gState.armed.load(std::memory_order_relaxed))
        return;
    int saved_errno = errno;

    const ucontext_t *uc = static_cast<const ucontext_t *>(uctx);
    Sample s;
#if defined(__x86_64__)
    uint64_t pc = static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RIP]);
    uint64_t fp = static_cast<uint64_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
    uint64_t pc = uc->uc_mcontext.pc;
    uint64_t fp = uc->uc_mcontext.regs[29];
#else
    uint64_t pc = 0, fp = 0;
#endif
    s.frames[0] = pc;
    unsigned n = 1;
    while (n < kMaxFrames && fp >= 4096) {
        uint64_t pair[2]; // [0] = caller's fp, [1] = return address
        if (!readMem(fp, pair, sizeof(pair)))
            break;
        if (pair[1] < 4096)
            break;
        s.frames[n++] = pair[1];
        if (pair[0] <= fp || pair[0] - fp > kMaxFrameSpan)
            break;
        fp = pair[0];
    }
    s.nframes = static_cast<uint16_t>(n);
    s.tag = gState.tag.load(std::memory_order_relaxed);
    s.tid = static_cast<uint32_t>(syscall(SYS_gettid));
    s.span = tracing::currentSpanId();

    uint64_t i = gState.next.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = gState.slots[i % gState.capacity];
    slot.seq.store(2 * i + 1, std::memory_order_relaxed);
    slot.s = s;
    slot.seq.store(2 * i + 2, std::memory_order_release);

    errno = saved_errno;
}

/** Linux per-thread CPU clock id (kernel encoding: complemented tid,
 *  CPUCLOCK_SCHED, per-thread bit). CLOCK_THREAD_CPUTIME_ID only
 *  names the *calling* thread, so the watcher must build these. */
clockid_t
threadCpuClock(pid_t tid)
{
    constexpr unsigned kCpuClockSched = 2;
    constexpr unsigned kCpuClockPerThread = 4;
    return static_cast<clockid_t>(
        ((~static_cast<unsigned>(tid)) << 3) | kCpuClockSched |
        kCpuClockPerThread);
}

/** Create and arm a CPU-time interval timer delivering SIGPROF to
 *  @p tid. Returns false if the kernel refuses (thread already gone,
 *  or the clockid encoding is unsupported). */
bool
armThreadTimer(pid_t tid, unsigned hz, timer_t &out)
{
    struct sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = tid;
    timer_t t;
    if (timer_create(threadCpuClock(tid), &sev, &t) != 0)
        return false;
    long ns = static_cast<long>(1000000000ll / hz);
    struct itimerspec spec;
    spec.it_interval.tv_sec = ns / 1000000000l;
    spec.it_interval.tv_nsec = ns % 1000000000l;
    spec.it_value = spec.it_interval;
    if (timer_settime(t, 0, &spec, nullptr) != 0) {
        timer_delete(t);
        return false;
    }
    out = t;
    return true;
}

/** Scan /proc/self/task and arm a timer for every thread that does
 *  not have one yet. Returns how many new timers were created. */
unsigned
armNewThreads(pid_t self_tid)
{
    unsigned created = 0;
    DIR *d = opendir("/proc/self/task");
    if (!d)
        return 0;
    while (struct dirent *e = readdir(d)) {
        if (e->d_name[0] < '0' || e->d_name[0] > '9')
            continue;
        pid_t tid = static_cast<pid_t>(std::atol(e->d_name));
        if (tid == self_tid || gState.timers.count(tid))
            continue;
        timer_t t;
        if (armThreadTimer(tid, gState.hz, t)) {
            gState.timers[tid] = t;
            ++created;
        }
    }
    closedir(d);
    return created;
}

void
watcherMain()
{
    pid_t self = static_cast<pid_t>(syscall(SYS_gettid));
    while (gState.watcherRun.load(std::memory_order_relaxed)) {
        armNewThreads(self);
        struct timespec ts = {0, 100 * 1000 * 1000};
        nanosleep(&ts, nullptr);
    }
}

/** Aggregate the retained samples into unique collapsed stacks. */
std::map<std::string, uint64_t>
foldStacks(const std::vector<Sample> &samples, Symbolizer &sym)
{
    std::map<std::string, uint64_t> folded;
    for (const Sample &s : samples)
        ++folded[sym.stackLine(s)];
    return folded;
}

/** Environment arming, before main(): TEXCACHE_PROF_HZ=<hz> turns
 *  the profiler on for the whole process; TEXCACHE_PROF_BUF sizes
 *  the sample ring. */
struct EnvInit
{
    EnvInit()
    {
        const char *hz_env = std::getenv("TEXCACHE_PROF_HZ");
        if (!hz_env || !*hz_env)
            return;
        char *end = nullptr;
        long hz = std::strtol(hz_env, &end, 10);
        fatal_if(end == hz_env || *end != '\0' || hz < 0 ||
                     hz > 100000,
                 "TEXCACHE_PROF_HZ='", hz_env,
                 "' is not a sample rate in 0..100000");
        if (hz == 0)
            return;
        Options opts;
        opts.hz = static_cast<unsigned>(hz);
        if (const char *buf = std::getenv("TEXCACHE_PROF_BUF")) {
            char *bend = nullptr;
            long long cap = std::strtoll(buf, &bend, 10);
            fatal_if(bend == buf || *bend != '\0' || cap < 1,
                     "TEXCACHE_PROF_BUF='", buf,
                     "' is not a positive sample count");
            opts.capacity = static_cast<uint64_t>(cap);
        }
        start(opts);
    }
} envInit;

} // namespace

bool
start(const Options &opts)
{
    std::lock_guard<std::mutex> g(gState.mu);
    if (gState.armed.load(std::memory_order_relaxed))
        return true;
    fatal_if(opts.hz == 0 || opts.capacity == 0,
             "prof::start: hz and capacity must be positive");

    // The slot array is deliberately never freed: a straggler SIGPROF
    // delivered between our disarm store and the kernel acting on
    // timer_delete may still read it. Arm/disarm cycles are test-only,
    // so re-arming with a different capacity leaks one old array.
    if (!gState.slots || gState.capacity != opts.capacity) {
        gState.slots = new Slot[opts.capacity];
        gState.capacity = opts.capacity;
    } else {
        for (uint64_t i = 0; i < gState.capacity; ++i)
            gState.slots[i].seq.store(0, std::memory_order_relaxed);
    }
    gState.next.store(0, std::memory_order_relaxed);
    gState.hz = opts.hz;
    gState.pid = getpid();

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = onSigprof;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
        warn("prof: sigaction(SIGPROF) failed: ",
             std::strerror(errno));
        return false;
    }

    // Prove per-thread CPU-clock timers work here before claiming to
    // be armed (seccomp filters and exotic kernels may refuse).
    timer_t probe;
    pid_t self = static_cast<pid_t>(syscall(SYS_gettid));
    if (!armThreadTimer(self, opts.hz, probe)) {
        warn("prof: per-thread CPU-clock timers unavailable (",
             std::strerror(errno), "); profiler stays disarmed");
        return false;
    }
    gState.timers[self] = probe;

    tracing::enableSpanContext();
    gState.armed.store(true, std::memory_order_relaxed);
    gState.watcherRun.store(true, std::memory_order_relaxed);
    gState.watcher = std::thread(watcherMain);
    inform("prof: armed at ", opts.hz, " Hz per thread (ring ",
           opts.capacity, " samples)");
    return true;
}

void
stop()
{
    std::lock_guard<std::mutex> g(gState.mu);
    if (!gState.armed.load(std::memory_order_relaxed))
        return;
    gState.armed.store(false, std::memory_order_relaxed);
    gState.watcherRun.store(false, std::memory_order_relaxed);
    if (gState.watcher.joinable())
        gState.watcher.join();
    for (auto &kv : gState.timers)
        timer_delete(kv.second);
    gState.timers.clear();
    gState.hz = 0;
    tracing::disableSpanContext();
}

bool
armed()
{
    return gState.armed.load(std::memory_order_relaxed);
}

unsigned
hz()
{
    return gState.hz;
}

Counts
counts()
{
    Counts c;
    c.total = gState.next.load(std::memory_order_relaxed);
    c.retained = std::min(c.total, gState.capacity);
    c.dropped = c.total - c.retained;
    return c;
}

void
setRequestTag(uint64_t tag)
{
    gState.tag.store(tag, std::memory_order_relaxed);
}

std::vector<Sample>
snapshotSamples()
{
    std::vector<Sample> out;
    uint64_t total = gState.next.load(std::memory_order_acquire);
    if (!gState.slots || total == 0)
        return out;
    uint64_t first = total > gState.capacity ? total - gState.capacity
                                             : 0;
    out.reserve(static_cast<size_t>(total - first));
    for (uint64_t i = first; i < total; ++i) {
        Slot &slot = gState.slots[i % gState.capacity];
        if (slot.seq.load(std::memory_order_acquire) != 2 * i + 2)
            continue; // writer mid-flight (or already overwritten)
        Sample s = slot.s;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != 2 * i + 2)
            continue; // overwritten while copying
        if (s.nframes == 0 || s.nframes > kMaxFrames)
            continue;
        out.push_back(s);
    }
    return out;
}

Symbolizer::Symbolizer() : spanNames_(tracing::spanNames()) {}

std::string
Symbolizer::resolve(uint64_t pc)
{
    auto it = cache_.find(pc);
    if (it != cache_.end())
        return it->second;

    std::string name;
    Dl_info info;
    std::memset(&info, 0, sizeof(info));
    if (dladdr(reinterpret_cast<void *>(pc), &info) &&
        info.dli_sname) {
        int status = 0;
        char *demangled = abi::__cxa_demangle(info.dli_sname, nullptr,
                                              nullptr, &status);
        name = (status == 0 && demangled) ? demangled
                                          : info.dli_sname;
        std::free(demangled);
        // Drop the argument list for readability; keep operator()
        // and friends intact.
        size_t paren = name.find('(');
        if (paren != std::string::npos && paren > 0 &&
            name.compare(0, 8, "operator") != 0 &&
            name.rfind("operator", paren) == std::string::npos)
            name.resize(paren);
    } else if (info.dli_fname && info.dli_fbase) {
        const char *base = std::strrchr(info.dli_fname, '/');
        std::ostringstream os;
        os << (base ? base + 1 : info.dli_fname) << "+0x" << std::hex
           << (pc - reinterpret_cast<uint64_t>(info.dli_fbase));
        name = os.str();
    } else {
        std::ostringstream os;
        os << "0x" << std::hex << pc;
        name = os.str();
    }
    // Collapsed-stack text splits frames on ';' and the trailing
    // count on ' '; neither may appear inside a frame name.
    for (char &c : name) {
        if (c == ';')
            c = ':';
        else if (c == ' ')
            c = '_';
    }
    cache_.emplace(pc, name);
    return name;
}

std::string
Symbolizer::frameName(uint64_t pc, bool return_address)
{
    // Return addresses point after the call; step back into it so the
    // caller's own line, not the next statement, gets the credit.
    return resolve(return_address ? pc - 1 : pc);
}

std::string
Symbolizer::spanFrame(const Sample &s) const
{
    if (s.span == tracing::kNoSpanId || s.span >= spanNames_.size())
        return "span:(none)";
    std::string out = "span:" + spanNames_[s.span];
    for (char &c : out) {
        if (c == ';')
            c = ':';
        else if (c == ' ')
            c = '_';
    }
    return out;
}

std::string
Symbolizer::stackLine(const Sample &s)
{
    std::string line = spanFrame(s);
    for (unsigned j = s.nframes; j-- > 0;) {
        line += ';';
        line += frameName(s.frames[j], j > 0);
    }
    return line;
}

void
writeCollapsed(std::ostream &os)
{
    Symbolizer sym;
    for (const auto &kv : foldStacks(snapshotSamples(), sym))
        os << kv.first << ' ' << kv.second << '\n';
}

void
writeSpeedscope(std::ostream &os, const std::string &name)
{
    Symbolizer sym;
    std::vector<Sample> samples = snapshotSamples();

    // Unique frame table plus unique stacks with weights; the stack
    // holds frame indices root-first, as speedscope expects.
    std::map<std::string, size_t> frameIndex;
    std::vector<std::string> frames;
    auto internFrame = [&](const std::string &f) {
        auto it = frameIndex.find(f);
        if (it != frameIndex.end())
            return it->second;
        size_t idx = frames.size();
        frames.push_back(f);
        frameIndex.emplace(f, idx);
        return idx;
    };
    std::map<std::vector<size_t>, uint64_t> stacks;
    uint64_t total = 0;
    for (const Sample &s : samples) {
        std::vector<size_t> stack;
        stack.reserve(s.nframes + 1u);
        stack.push_back(internFrame(sym.spanFrame(s)));
        for (unsigned j = s.nframes; j-- > 0;)
            stack.push_back(internFrame(sym.frameName(s.frames[j],
                                                      j > 0)));
        ++stacks[stack];
        ++total;
    }

    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("$schema",
         "https://www.speedscope.app/file-format-schema.json");
    w.kv("name", name);
    w.kv("exporter", "texcache-prof");
    w.key("shared");
    w.beginObject();
    w.key("frames");
    w.beginArray();
    for (const std::string &f : frames) {
        w.beginObject();
        w.kv("name", f);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.key("profiles");
    w.beginArray();
    w.beginObject();
    w.kv("type", "sampled");
    w.kv("name", name);
    w.kv("unit", "none");
    w.kv("startValue", uint64_t(0));
    w.kv("endValue", total);
    w.key("samples");
    w.beginArray();
    for (const auto &kv : stacks) {
        w.beginArray();
        for (size_t idx : kv.first)
            w.value(static_cast<uint64_t>(idx));
        w.endArray();
    }
    w.endArray();
    w.key("weights");
    w.beginArray();
    for (const auto &kv : stacks)
        w.value(kv.second);
    w.endArray();
    w.endObject();
    w.endArray();
    w.endObject();
    os << '\n';
}

void
writeProfileJson(std::ostream &os, size_t max_stacks,
                 size_t max_tags)
{
    Symbolizer sym;
    std::vector<Sample> samples = snapshotSamples();
    Counts c = counts();

    // Group by request tag; fold each tag's stacks and keep the
    // heaviest max_stacks so the document fits a service frame.
    std::map<uint64_t, std::vector<const Sample *>> byTag;
    for (const Sample &s : samples)
        byTag[s.tag].push_back(&s);

    // Keep only the heaviest max_tags tags, again to bound the body.
    std::vector<uint64_t> keep;
    keep.reserve(byTag.size());
    for (const auto &tagged : byTag)
        keep.push_back(tagged.first);
    size_t tagsTruncated = 0;
    if (keep.size() > max_tags) {
        std::sort(keep.begin(), keep.end(),
                  [&](uint64_t a, uint64_t b) {
                      size_t na = byTag[a].size(), nb = byTag[b].size();
                      return na != nb ? na > nb : a < b;
                  });
        tagsTruncated = keep.size() - max_tags;
        keep.resize(max_tags);
        std::sort(keep.begin(), keep.end());
    }

    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("armed", armed());
    w.kv("hz", static_cast<uint64_t>(hz()));
    w.kv("total_samples", c.total);
    w.kv("retained", static_cast<uint64_t>(samples.size()));
    w.kv("dropped", c.dropped);
    w.kv("requests_truncated",
         static_cast<uint64_t>(tagsTruncated));
    w.key("requests");
    w.beginObject();
    for (uint64_t tag : keep) {
        const auto &tagged = *byTag.find(tag);
        std::map<std::string, uint64_t> folded;
        for (const Sample *s : tagged.second)
            ++folded[sym.stackLine(*s)];
        std::vector<std::pair<std::string, uint64_t>> top(
            folded.begin(), folded.end());
        std::sort(top.begin(), top.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second
                                 ? a.second > b.second
                                 : a.first < b.first;
                  });
        bool truncated = top.size() > max_stacks;
        if (truncated)
            top.resize(max_stacks);

        w.key(std::to_string(tagged.first));
        w.beginObject();
        w.kv("samples",
             static_cast<uint64_t>(tagged.second.size()));
        w.kv("truncated", truncated);
        w.key("stacks");
        w.beginObject();
        for (const auto &kv : top)
            w.kv(kv.first, kv.second);
        w.endObject();
        w.endObject();
    }
    w.endObject();
    w.endObject();
    os << '\n';
}

DumpInfo
dumpToFiles(const std::string &name)
{
    DumpInfo info;
    Counts c = counts();
    info.samples = c.retained;
    info.dropped = c.dropped;
    info.hz = hz();

    std::string dir;
    if (const char *env = std::getenv("TEXCACHE_STATS_DIR"))
        if (*env)
            dir = std::string(env) + "/";
    info.collapsedPath = dir + "PROF_" + name + ".collapsed";
    info.speedscopePath = dir + "PROF_" + name + ".speedscope.json";

    std::ofstream collapsed(info.collapsedPath);
    if (!collapsed) {
        warn("cannot write profile ", info.collapsedPath);
        info.collapsedPath.clear();
    } else {
        writeCollapsed(collapsed);
        inform("wrote collapsed profile ", info.collapsedPath, " (",
               info.samples, " samples, ", info.dropped, " dropped)");
    }

    std::ofstream speedscope(info.speedscopePath);
    if (!speedscope) {
        warn("cannot write profile ", info.speedscopePath);
        info.speedscopePath.clear();
    } else {
        writeSpeedscope(speedscope, name);
        inform("wrote speedscope profile ", info.speedscopePath);
    }
    return info;
}

} // namespace prof
} // namespace texcache
