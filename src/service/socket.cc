#include "service/socket.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace texcache {
namespace service {

namespace {

/** Fill @p addr from @p path; false when the path does not fit. */
bool
unixAddr(const std::string &path, sockaddr_un &addr)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
readAll(int fd, char *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, buf + got, n - got);
        if (r > 0) {
            got += static_cast<size_t>(r);
        } else if (r < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

bool
writeAll(int fd, const char *buf, size_t n)
{
    size_t put = 0;
    while (put < n) {
        ssize_t r = ::write(fd, buf + put, n - put);
        if (r > 0) {
            put += static_cast<size_t>(r);
        } else if (r < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

int
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr;
    if (!unixAddr(path, addr)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0 ||
        ::listen(fd, backlog) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr;
    if (!unixAddr(path, addr)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

bool
readFrame(int fd, std::string &out)
{
    // Length line: up to 8 decimal digits then '\n', read one byte at
    // a time (the line is tiny; the body read below is the bulk one).
    size_t len = 0;
    unsigned digits = 0;
    for (;;) {
        char c;
        ssize_t r = ::read(fd, &c, 1);
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            return false;
        if (c == '\n')
            break;
        if (c < '0' || c > '9' || ++digits > 8)
            return false;
        len = len * 10 + static_cast<size_t>(c - '0');
    }
    if (digits == 0 || len > kMaxFrame)
        return false;
    out.resize(len);
    return readAll(fd, out.data(), len);
}

bool
writeFrame(int fd, std::string_view payload)
{
    if (payload.size() > kMaxFrame)
        return false;
    std::string head = std::to_string(payload.size()) + "\n";
    return writeAll(fd, head.data(), head.size()) &&
           writeAll(fd, payload.data(), payload.size());
}

} // namespace service
} // namespace texcache
