/** @file Unit tests for common/table.hh and common/rng.hh. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/table.hh"

using namespace texcache;

TEST(Table, FormatFixed)
{
    EXPECT_EQ(fmtFixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmtFixed(1.23556, 2), "1.24");
    EXPECT_EQ(fmtFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(fmtFixed(3.0, 0), "3");
}

TEST(Table, FormatPercent)
{
    EXPECT_EQ(fmtPercent(0.0153), "1.53%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
    EXPECT_EQ(fmtPercent(0.0028, 2), "0.28%");
}

TEST(Table, FormatBytes)
{
    EXPECT_EQ(fmtBytes(32), "32B");
    EXPECT_EQ(fmtBytes(1024), "1KB");
    EXPECT_EQ(fmtBytes(32 * 1024), "32KB");
    EXPECT_EQ(fmtBytes(1 << 20), "1MB");
    EXPECT_EQ(fmtBytes(1536), "1536B"); // not a whole KB
}

TEST(Table, AlignsColumns)
{
    TextTable t("demo");
    t.header({"a", "bbbb"});
    t.row({"xxx", "y"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("a    bbbb"), std::string::npos);
    EXPECT_NE(s.find("xxx  y"), std::string::npos);
}

TEST(Table, Csv)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowIsInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformIsInRange)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        float v = r.uniform();
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Rng, BelowCoversValues)
{
    Rng r(11);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Table, CsvEnvSwitchesPrintToCsv)
{
    TextTable t("env");
    t.header({"a", "b"});
    t.row({"1", "2"});
    setenv("TEXCACHE_CSV", "1", 1);
    std::ostringstream os;
    t.print(os);
    unsetenv("TEXCACHE_CSV");
    EXPECT_EQ(os.str(), "# env\na,b\n1,2\n");
    // And back to aligned text once unset.
    std::ostringstream os2;
    t.print(os2);
    EXPECT_NE(os2.str().find("== env =="), std::string::npos);
}

// --- JsonWriter escaping ---------------------------------------------

#include "common/json.hh"

namespace {

std::string
jsonString(std::string_view raw)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("k", raw);
        w.endObject();
    }
    return os.str();
}

} // namespace

TEST(JsonWriter, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonString("say \"hi\""),
              "{\"k\":\"say \\\"hi\\\"\"}");
    EXPECT_EQ(jsonString("C:\\temp\\x"),
              "{\"k\":\"C:\\\\temp\\\\x\"}");
    // A backslash before a quote must escape to four characters, not
    // collapse into an escaped quote.
    EXPECT_EQ(jsonString("\\\""), "{\"k\":\"\\\\\\\"\"}");
}

TEST(JsonWriter, EscapesNamedControlCharacters)
{
    EXPECT_EQ(jsonString("a\nb"), "{\"k\":\"a\\nb\"}");
    EXPECT_EQ(jsonString("a\tb"), "{\"k\":\"a\\tb\"}");
    EXPECT_EQ(jsonString("a\rb"), "{\"k\":\"a\\rb\"}");
}

TEST(JsonWriter, EscapesOtherControlCharactersAsUnicode)
{
    EXPECT_EQ(jsonString(std::string_view("\x01", 1)),
              "{\"k\":\"\\u0001\"}");
    EXPECT_EQ(jsonString(std::string_view("\x1f", 1)),
              "{\"k\":\"\\u001f\"}");
    // NUL embedded in a string_view must not truncate the output.
    EXPECT_EQ(jsonString(std::string_view("a\0b", 3)),
              "{\"k\":\"a\\u0000b\"}");
}

TEST(JsonWriter, PassesNonAsciiUtf8Through)
{
    // UTF-8 bytes >= 0x80 are valid inside JSON strings and must not
    // be escaped or mangled (snowman, e-acute, 4-byte emoji).
    EXPECT_EQ(jsonString("\xe2\x98\x83"), "{\"k\":\"\xe2\x98\x83\"}");
    EXPECT_EQ(jsonString("caf\xc3\xa9"), "{\"k\":\"caf\xc3\xa9\"}");
    EXPECT_EQ(jsonString("\xf0\x9f\x8e\xa8"),
              "{\"k\":\"\xf0\x9f\x8e\xa8\"}");
}

TEST(JsonWriter, EscapesKeysToo)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("we\"ird\nkey", 1u);
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"we\\\"ird\\nkey\":1}");
}
