/** @file Unit tests for common/table.hh and common/rng.hh. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/table.hh"

using namespace texcache;

TEST(Table, FormatFixed)
{
    EXPECT_EQ(fmtFixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmtFixed(1.23556, 2), "1.24");
    EXPECT_EQ(fmtFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(fmtFixed(3.0, 0), "3");
}

TEST(Table, FormatPercent)
{
    EXPECT_EQ(fmtPercent(0.0153), "1.53%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
    EXPECT_EQ(fmtPercent(0.0028, 2), "0.28%");
}

TEST(Table, FormatBytes)
{
    EXPECT_EQ(fmtBytes(32), "32B");
    EXPECT_EQ(fmtBytes(1024), "1KB");
    EXPECT_EQ(fmtBytes(32 * 1024), "32KB");
    EXPECT_EQ(fmtBytes(1 << 20), "1MB");
    EXPECT_EQ(fmtBytes(1536), "1536B"); // not a whole KB
}

TEST(Table, AlignsColumns)
{
    TextTable t("demo");
    t.header({"a", "bbbb"});
    t.row({"xxx", "y"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("a    bbbb"), std::string::npos);
    EXPECT_NE(s.find("xxx  y"), std::string::npos);
}

TEST(Table, Csv)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowIsInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformIsInRange)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        float v = r.uniform();
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Rng, BelowCoversValues)
{
    Rng r(11);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Table, CsvEnvSwitchesPrintToCsv)
{
    TextTable t("env");
    t.header({"a", "b"});
    t.row({"1", "2"});
    setenv("TEXCACHE_CSV", "1", 1);
    std::ostringstream os;
    t.print(os);
    unsetenv("TEXCACHE_CSV");
    EXPECT_EQ(os.str(), "# env\na,b\n1,2\n");
    // And back to aligned text once unset.
    std::ostringstream os2;
    t.print(os2);
    EXPECT_NE(os2.str().find("== env =="), std::string::npos);
}
