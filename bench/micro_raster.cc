/**
 * @file
 * Google-benchmark microbenchmark for the rasterizer and sampler hot
 * paths (fragments/second through triangle traversal and mip-mapped
 * trilinear filtering), followed by the end-to-end trace-generation
 * workload: all four Table 4.1 scenes rendered at the paper's scan
 * direction through (a) the serial reference renderer, (b) the tile
 * engine on one thread and (c) the tile engine on N threads. All
 * three must produce byte-identical traces; the wall-clocks and
 * fragments/s land in BENCH_trace_gen.json, which tools/check_bench.py
 * gates in CI.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "common/table.hh"
#include "core/sweep.hh"
#include "img/procedural.hh"
#include "pipeline/renderer.hh"
#include "raster/rasterizer.hh"
#include "raster/span_rasterizer.hh"
#include "scene/benchmarks.hh"
#include "simd/isa.hh"
#include "simd/span_kernels.hh"
#include "texture/sampler.hh"

using namespace texcache;

namespace {

ScreenVertex
sv(float x, float y, float w, float u, float v)
{
    ScreenVertex r;
    r.x = x;
    r.y = y;
    r.z = 0.5f;
    r.invW = 1.0f / w;
    r.uOverW = u / w;
    r.vOverW = v / w;
    return r;
}

void
rasterizeBigTriangle(benchmark::State &state)
{
    RasterOrder order = state.range(0) == 0
                            ? RasterOrder::horizontal()
                            : RasterOrder::tiledOrder(8, 8);
    TriangleSetup tri(sv(0, 0, 1, 0, 0), sv(255, 0, 2, 1, 0),
                      sv(0, 255, 2, 0, 1));
    uint64_t frags = 0;
    for (auto _ : state) {
        frags = 0;
        rasterizeTriangle(tri, 256, 256, order,
                          [&](const Fragment &f) {
                              benchmark::DoNotOptimize(f.u);
                              ++frags;
                          });
    }
    state.SetItemsProcessed(state.iterations() * frags);
    state.counters["fragments"] = static_cast<double>(frags);
}

void
trilinearSample(benchmark::State &state)
{
    static MipMap mip(makeChecker(256, 32, Rgba8{255, 255, 255, 255},
                                  Rgba8{0, 0, 0, 255}));
    uint32_t x = 99;
    for (auto _ : state) {
        x = x * 1664525u + 1013904223u;
        float u = static_cast<float>(x & 0xffff) / 65536.0f;
        float v = static_cast<float>((x >> 16) & 0x7fff) / 32768.0f;
        float lambda = static_cast<float>((x >> 28) & 7) * 0.7f;
        SampleResult s = sampleMipMap(mip, u, v, lambda);
        benchmark::DoNotOptimize(s.color.x);
    }
    state.SetItemsProcessed(state.iterations());
}

/**
 * The SIMD hot-loop measurement behind the gated `simd_speedup`
 * metric: the span kernels (attributes + LOD + level select + address
 * generation + record packing, simd/span_kernels.hh) over the covered
 * pixels of a large perspective triangle, forced-scalar vs the
 * dispatched ISA level. Outputs are asserted byte-identical lane for
 * lane before anything is timed, and each side takes the minimum of
 * several repetitions (this is a single-digit-ns/fragment loop; on a
 * loaded box the mean drifts, the minimum doesn't). The end-to-end
 * engine ratio stays a report metric: trace/repetition folding and
 * span setup are shared scalar work, so Amdahl caps it well below the
 * kernel ratio.
 */
std::pair<double, double>
spanKernelSpeedup()
{
    MipMap mip(makeChecker(256, 32, Rgba8{255, 255, 255, 255},
                           Rgba8{0, 0, 0, 255}));
    TriangleSetup tri(sv(0, 0, 1, 0, 0), sv(255, 0, 2, 1, 0),
                      sv(0, 255, 2, 0, 1));
    std::vector<int32_t> xs, ys;
    for (int y = 0; y < 256; ++y)
        for (int x = 0; x < 256; ++x)
            if (tri.covers(x, y)) {
                xs.push_back(x);
                ys.push_back(y);
            }
    const size_t n = xs.size() - xs.size() % simd::kSpanBatch;
    simd::SpanContext ctx = simd::makeSpanContext(
        tri, mip, 3, 256.0f, 32.0f, FilterMode::Trilinear);

    const simd::SpanKernels *scalar =
        simd::kernelsFor(simd::Isa::Scalar);
    const simd::SpanKernels *best = &simd::kernels();

    // Identity first: every lane of every batch, both kernel tables.
    for (size_t i = 0; i < n; i += simd::kSpanBatch) {
        simd::SpanBatchOut a, b;
        scalar->touches(ctx, &xs[i], &ys[i], simd::kSpanBatch, a);
        best->touches(ctx, &xs[i], &ys[i], simd::kSpanBatch, b);
        for (int l = 0; l < simd::kSpanBatch; ++l)
            panic_if(a.recEnd[l] != b.recEnd[l] ||
                         a.anchorU[l] != b.anchorU[l] ||
                         a.anchorV[l] != b.anchorV[l] ||
                         a.firstU[l] != b.firstU[l] ||
                         a.firstV[l] != b.firstV[l],
                     "SIMD span kernel diverged from scalar at batch ",
                     i, " lane ", l);
        panic_if(std::memcmp(a.records, b.records,
                             a.recEnd[simd::kSpanBatch - 1] *
                                 sizeof(uint64_t)) != 0,
                 "SIMD span kernel records diverged at batch ", i);
    }

    auto timeKernel = [&](const simd::SpanKernels *k) {
        double bestMs = 1e300;
        simd::SpanBatchOut out;
        for (int rep = 0; rep < 5; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            uint64_t sink = 0;
            for (int pass = 0; pass < 40; ++pass)
                for (size_t i = 0; i < n; i += simd::kSpanBatch) {
                    k->touches(ctx, &xs[i], &ys[i], simd::kSpanBatch,
                               out);
                    sink += out.recEnd[simd::kSpanBatch - 1];
                }
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            benchmark::DoNotOptimize(sink);
            bestMs = std::min(bestMs, ms);
        }
        return bestMs;
    };
    return {timeKernel(scalar), timeKernel(best)};
}

/** Scoped TEXCACHE_THREADS override (restores the prior value). */
class ThreadEnvOverride
{
  public:
    explicit ThreadEnvOverride(const char *value)
    {
        const char *old = std::getenv("TEXCACHE_THREADS");
        had_ = old != nullptr;
        if (old)
            saved_ = old;
        setenv("TEXCACHE_THREADS", value, 1);
    }
    ~ThreadEnvOverride()
    {
        if (had_)
            setenv("TEXCACHE_THREADS", saved_.c_str(), 1);
        else
            unsetenv("TEXCACHE_THREADS");
    }

  private:
    bool had_;
    std::string saved_;
};

/**
 * The trace-generation workload: render all four benchmark scenes at
 * their paper scan direction, capturing the texel trace (framebuffer
 * off, as TraceStore renders for the figures). The reference serial
 * renderer is the "before"; the tile engine on one thread isolates
 * the hot-path surgery (span stepping, touch-only sampling, batched
 * trace appends); the tile engine on N threads adds the parallelism.
 * Byte-identical traces across all three are asserted, so the timing
 * comparison can never drift away from correctness.
 */
void
traceGenWorkload()
{
    // Parallel-pass width: honor an explicit TEXCACHE_THREADS, else 8
    // (the speedup target in EXPERIMENTS.md is quoted at 8 workers).
    const char *env = std::getenv("TEXCACHE_THREADS");
    std::string nThreads = env && *env ? env : "8";

    struct Run
    {
        BenchScene id;
        Scene scene;
        RasterOrder order;
    };
    std::vector<Run> runs;
    for (BenchScene s : allBenchScenes())
        runs.push_back({s, makeScene(s), benchutil::sceneOrder(s)});

    auto renderAll = [&](ParallelTiles mode) {
        std::vector<RenderOutput> outs;
        outs.reserve(runs.size());
        auto t0 = std::chrono::steady_clock::now();
        for (const Run &r : runs) {
            RenderOptions opts;
            opts.writeFramebuffer = false;
            opts.parallelTiles = mode;
            outs.push_back(render(r.scene, r.order, opts));
        }
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        return std::make_pair(std::move(outs), ms);
    };

    auto [ref, refMs] = renderAll(ParallelTiles::Serial);

    const simd::Isa isa = simd::activeIsa();
    std::vector<RenderOutput> scalarOut, engine1, engineN;
    double scalarMs = 0.0, engine1Ms = 0.0, engineNMs = 0.0;
    unsigned parThreads = 0;
    {
        // Forced-scalar tile engine: the same code path as engine1
        // below with the span kernels pinned to the scalar level, so
        // scalarMs / engine1Ms is the end-to-end SIMD win (reported
        // as simd_speedup_end_to_end; the gated simd_speedup is the
        // kernel hot-loop ratio from spanKernelSpeedup()).
        ThreadEnvOverride one("1");
        simd::setActiveIsa(simd::Isa::Scalar);
        auto r = renderAll(ParallelTiles::Force);
        simd::setActiveIsa(isa);
        scalarOut = std::move(r.first);
        scalarMs = r.second;
    }
    {
        ThreadEnvOverride one("1");
        auto r = renderAll(ParallelTiles::Force);
        engine1 = std::move(r.first);
        engine1Ms = r.second;
    }
    {
        ThreadEnvOverride n(nThreads.c_str());
        parThreads = Sweep::threadCount();
        auto r = renderAll(ParallelTiles::Force);
        engineN = std::move(r.first);
        engineNMs = r.second;
    }

    // The engine must reproduce the reference byte for byte - at
    // every ISA level; a timing win that changes the trace would be
    // meaningless.
    uint64_t fragments = 0, texels = 0;
    for (size_t i = 0; i < runs.size(); ++i) {
        panic_if(ref[i].trace.packed() != engine1[i].trace.packed() ||
                     ref[i].trace.packed() != engineN[i].trace.packed() ||
                     ref[i].trace.packed() != scalarOut[i].trace.packed(),
                 "tile engine trace diverged from the reference on ",
                 benchSceneName(runs[i].id));
        panic_if(ref[i].stats.fragments != engineN[i].stats.fragments ||
                     ref[i].stats.texelAccesses !=
                         engineN[i].stats.texelAccesses,
                 "tile engine stats diverged from the reference on ",
                 benchSceneName(runs[i].id));
        fragments += ref[i].stats.fragments;
        texels += ref[i].stats.texelAccesses;
    }

    double refFps = fragments / (refMs / 1e3);
    double scalarFps = fragments / (scalarMs / 1e3);
    double serialFps = fragments / (engine1Ms / 1e3);
    double parallelFps = fragments / (engineNMs / 1e3);
    auto [kScalarMs, kBestMs] = spanKernelSpeedup();
    double simdSpeedup = kScalarMs / kBestMs;
    double simdEndToEnd = scalarMs / engine1Ms;
    const unsigned cores = std::thread::hardware_concurrency();

    TextTable table("table_4_1 trace generation: 4 scenes at the "
                    "paper scan direction, trace capture on");
    table.header(
        {"Path", "ISA", "Threads", "Wall(ms)", "Mfrag/s", "Speedup"});
    table.row({"reference", "scalar", "1", fmtFixed(refMs, 1),
               fmtFixed(refFps / 1e6, 2), "1.00"});
    table.row({"tile engine", "scalar", "1", fmtFixed(scalarMs, 1),
               fmtFixed(scalarFps / 1e6, 2),
               fmtFixed(refMs / scalarMs, 2)});
    table.row({"tile engine", simd::isaName(isa), "1",
               fmtFixed(engine1Ms, 1), fmtFixed(serialFps / 1e6, 2),
               fmtFixed(refMs / engine1Ms, 2)});
    table.row({"tile engine", simd::isaName(isa),
               std::to_string(parThreads), fmtFixed(engineNMs, 1),
               fmtFixed(parallelFps / 1e6, 2),
               fmtFixed(refMs / engineNMs, 2)});
    table.print(std::cout);

    std::cout << "\ntrace generation (" << fragments << " fragments, "
              << texels << " texel accesses, isa=" << simd::isaName(isa)
              << ", " << cores << " cores): "
              << fmtFixed(refMs / engineNMs, 2) << "x at " << parThreads
              << " threads, " << fmtFixed(refMs / engine1Ms, 2)
              << "x single-thread; span kernels "
              << fmtFixed(simdSpeedup, 2)
              << "x over forced-scalar (end-to-end "
              << fmtFixed(simdEndToEnd, 2) << "x)\n";

    benchutil::dumpStats("trace_gen", [&](RunManifest &m,
                                          stats::Group &root) {
        m.config("workload", "table_4_1_trace_gen");
        m.config("threads", uint64_t(parThreads));
        m.config("scenes", uint64_t(runs.size()));
        m.config("hardware_concurrency", uint64_t(cores));
        m.config("simd_isa", simd::isaName(isa));

        // Determinism pins: any pipeline change that alters what the
        // scenes generate fails the gate exactly.
        m.metric("fragments", double(fragments), "exact");
        m.metric("texel_accesses", double(texels), "exact");
        // Throughput gates: machine-dependent, wide tolerance.
        m.metric("serial_fragments_per_sec", serialFps, "higher", 0.5);
        // Parallel throughput is only a meaningful gate with real
        // cores behind the workers: on a 1-2 core host, 8 workers
        // time-slice one pipeline and land *below* the single-thread
        // engine (scheduling overhead with zero added parallelism),
        // which is exactly what the committed baseline from a 1-core
        // box shows (3.16 Mfrag/s parallel vs 3.99 serial). Gate on
        // >= 4 cores, report otherwise; CI's multi-core runners also
        // assert the fresh speedup directly.
        m.metric("parallel_fragments_per_sec", parallelFps,
                 cores >= 4 ? "higher" : "report", 0.5);
        // SIMD win in the span-kernel hot loop (attributes + LOD +
        // addressing + packing), forced-scalar vs the dispatched
        // level, byte-identity asserted before timing. Only a gate
        // when the dispatcher actually selected a vector level. The
        // end-to-end engine ratio is Amdahl-capped by the shared
        // scalar work (trace capture, repetition folding, span
        // setup), so it is reported, not gated.
        m.metric("simd_speedup", simdSpeedup,
                 isa != simd::Isa::Scalar ? "higher" : "report", 0.25);
        m.metric("simd_speedup_end_to_end", simdEndToEnd, "report");
        m.metric("kernel_scalar_wall_ms", kScalarMs, "report");
        m.metric("kernel_best_wall_ms", kBestMs, "report");
        m.metric("scalar_wall_ms", scalarMs, "report");
        // Shape metrics; CI asserts the fresh parallel speedup >= 3
        // on its (known multi-core) runners rather than gating on a
        // baseline that may come from a different core count.
        m.metric("speedup_vs_reference", refMs / engineNMs, "report");
        m.metric("serial_speedup_vs_reference", refMs / engine1Ms,
                 "report");
        m.metric("reference_wall_ms", refMs, "report");
        m.metric("engine_serial_wall_ms", engine1Ms, "report");
        m.metric("parallel_wall_ms", engineNMs, "report");

        stats::Group &sg = root.group("scenes");
        for (size_t i = 0; i < runs.size(); ++i)
            sg.constant(std::string(benchSceneName(runs[i].id)) +
                            "_fragments",
                        ref[i].stats.fragments,
                        "fragments rendered for the scene");
    });
}

} // namespace

void
rasterizeBigTriangleSpans(benchmark::State &state)
{
    TriangleSetup tri(sv(0, 0, 1, 0, 0), sv(255, 0, 2, 1, 0),
                      sv(0, 255, 2, 0, 1));
    uint64_t frags = 0;
    for (auto _ : state) {
        frags = 0;
        rasterizeTriangleSpans(tri, 256, 256,
                               ScanDirection::Horizontal,
                               [&](const Fragment &f) {
                                   benchmark::DoNotOptimize(f.u);
                                   ++frags;
                               });
    }
    state.SetItemsProcessed(state.iterations() * frags);
    state.counters["fragments"] = static_cast<double>(frags);
}

BENCHMARK(rasterizeBigTriangle)
    ->Arg(0)
    ->ArgName("order")
    ->Arg(1);
BENCHMARK(rasterizeBigTriangleSpans);
BENCHMARK(trilinearSample);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    traceGenWorkload();
    return 0;
}
