/** @file
 * Tests for fixed-point filtering: identical texel touches to the
 * float path, color agreement within fixed-point tolerance.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "img/procedural.hh"
#include "texture/fixed_filter.hh"

using namespace texcache;

namespace {

const MipMap &
noiseMip()
{
    static MipMap m(makeSatellite(64, 5));
    return m;
}

} // namespace

TEST(FixedFilter, ExactAtTexelCenters)
{
    Image base(4, 4);
    base.at(2, 1) = {200, 100, 50, 255};
    MipMap m(std::move(base));
    FixedSampleResult s =
        sampleMipMapFixed(m, 2.5f / 4, 1.5f / 4, -1.0f);
    EXPECT_EQ(s.color.r, 200);
    EXPECT_EQ(s.color.g, 100);
    EXPECT_EQ(s.color.b, 50);
}

TEST(FixedFilter, MidpointIsAverage)
{
    Image base(4, 4, Rgba8{0, 0, 0, 255});
    base.at(1, 0) = {100, 0, 0, 255};
    MipMap m(std::move(base));
    // Halfway between texels (0,0)=0 and (1,0)=100.
    FixedSampleResult s =
        sampleMipMapFixed(m, 1.0f / 4, 0.5f / 4, -1.0f);
    EXPECT_NEAR(s.color.r, 50, 1);
}

TEST(FixedFilter, TouchesMatchFloatPathExactly)
{
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        float u = rng.uniform(-2.0f, 3.0f);
        float v = rng.uniform(-2.0f, 3.0f);
        float lambda = rng.uniform(-2.0f, 8.0f);
        SampleResult f = sampleMipMap(noiseMip(), u, v, lambda);
        FixedSampleResult x =
            sampleMipMapFixed(noiseMip(), u, v, lambda);
        ASSERT_EQ(f.kind, x.kind);
        ASSERT_EQ(f.numTouches, x.numTouches);
        for (unsigned k = 0; k < f.numTouches; ++k) {
            ASSERT_EQ(f.touches[k].level, x.touches[k].level);
            ASSERT_EQ(f.touches[k].u, x.touches[k].u);
            ASSERT_EQ(f.touches[k].v, x.touches[k].v);
        }
    }
}

TEST(FixedFilter, ColorWithinFixedPointTolerance)
{
    Rng rng(29);
    for (int i = 0; i < 2000; ++i) {
        float u = rng.uniform();
        float v = rng.uniform();
        float lambda = rng.uniform(-1.0f, 6.0f);
        SampleResult f = sampleMipMap(noiseMip(), u, v, lambda);
        FixedSampleResult x =
            sampleMipMapFixed(noiseMip(), u, v, lambda);
        ASSERT_NEAR(x.color.r, f.color.x * 255.0f, 2.0f)
            << "u=" << u << " v=" << v << " lambda=" << lambda;
        ASSERT_NEAR(x.color.g, f.color.y * 255.0f, 2.0f);
        ASSERT_NEAR(x.color.b, f.color.z * 255.0f, 2.0f);
    }
}

TEST(FixedFilter, ClampWrapAgrees)
{
    SampleResult f = sampleMipMap(noiseMip(), 1.4f, -0.3f, 0.7f,
                                  WrapMode::Clamp);
    FixedSampleResult x = sampleMipMapFixed(noiseMip(), 1.4f, -0.3f,
                                            0.7f, WrapMode::Clamp);
    for (unsigned k = 0; k < f.numTouches; ++k) {
        EXPECT_EQ(f.touches[k].u, x.touches[k].u);
        EXPECT_EQ(f.touches[k].v, x.touches[k].v);
    }
}
