/**
 * @file
 * Williams' original mip-map memory organization (paper Fig 5.1(a),
 * Pyramidal Parametrics 1983).
 *
 * Red, green and blue component planes of every level share one
 * 2W x 2H byte array: level l's R plane sits at (w_l, 0), G at (0, h_l)
 * and B at (w_l, h_l), where (w_l, h_l) are level l's dimensions, so each
 * coarser level nests into the upper-left quadrant of its predecessor.
 *
 * From a caching perspective this representation needs *three* memory
 * accesses per texel (one per component plane) and the planes are
 * separated by power-of-two offsets, which is exactly the pathology the
 * paper calls out in section 5.1.
 */

#ifndef TEXCACHE_LAYOUT_WILLIAMS_HH
#define TEXCACHE_LAYOUT_WILLIAMS_HH

#include "layout/layout.hh"

namespace texcache {

/** Component-plane quadtree arrangement; 3 accesses per texel. */
class WilliamsLayout : public TextureLayout
{
  public:
    WilliamsLayout(const std::vector<LevelDims> &d, AddressSpace &space);

    unsigned addresses(const TexelTouch &t, Addr out[3]) const override;
    std::string name() const override { return "williams"; }

    AddressingCost
    cost() const override
    {
        // Per component: base + ((oy + tv) << stride_log) + ox + tu.
        // Three component reads per texel.
        return {/*adds=*/3, /*shifts=*/1, /*constShifts=*/0, /*ands=*/0,
                /*accessesPerTexel=*/3};
    }

  private:
    Addr base_;
    unsigned strideLog_; ///< log2 of the arrangement width (2W bytes)
};

} // namespace texcache

#endif // TEXCACHE_LAYOUT_WILLIAMS_HH
