/**
 * @file
 * Internal bridge between the tracer's ring registry (tracing.cc)
 * and the dump sinks (trace_sink.cc). Not installed, not public.
 */

#ifndef TEXCACHE_TRACING_SINK_INTERNAL_HH
#define TEXCACHE_TRACING_SINK_INTERNAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tracing/trace_format.hh"

namespace texcache {
namespace tracing {
namespace detail {

/**
 * Invoke @p fn once per registered ring (registration order) under
 * the registry lock, and copy out the name table and sample divisor.
 */
void visitRings(
    const std::function<void(uint32_t tid, uint64_t dropped,
                             const std::vector<Event> &)> &fn,
    std::vector<std::string> &names, uint64_t &sample_n);

} // namespace detail
} // namespace tracing
} // namespace texcache

#endif // TEXCACHE_TRACING_SINK_INTERNAL_HH
