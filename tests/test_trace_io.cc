/** @file Tests for binary trace file round-tripping. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/trace_io.hh"

using namespace texcache;

namespace {

TexelTrace
sampleTrace(size_t n)
{
    TexelTrace t;
    for (size_t i = 0; i < n; ++i) {
        TexelRecord r;
        r.texture = static_cast<uint16_t>(i % 51);
        r.level = static_cast<uint16_t>(i % 11);
        r.u = static_cast<uint16_t>((i * 37) & 0x3ff);
        r.v = static_cast<uint16_t>((i * 101) & 0x3ff);
        r.kind = static_cast<TouchKind>(i % 4);
        t.append(r);
    }
    return t;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

} // namespace

TEST(TraceIo, RoundTripsExactly)
{
    TexelTrace t = sampleTrace(100000);
    std::string path = tempPath("roundtrip.trc");
    writeTrace(t, path);
    TexelTrace back = readTrace(path);
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); i += 53)
        ASSERT_EQ(back[i].pack(), t[i].pack()) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    TexelTrace t;
    std::string path = tempPath("empty.trc");
    writeTrace(t, path);
    TexelTrace back = readTrace(path);
    EXPECT_EQ(back.size(), 0u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(readTrace(tempPath("does_not_exist.trc")),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, BadMagicIsFatal)
{
    std::string path = tempPath("bad_magic.trc");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOTATRACE_FILE_AT_ALL";
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "not a texcache trace");
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedPayloadIsFatal)
{
    TexelTrace t = sampleTrace(1000);
    std::string path = tempPath("truncated.trc");
    writeTrace(t, path);
    // Chop the file short.
    {
        std::ifstream in(path, std::ios::binary);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(all.data(),
                  static_cast<std::streamsize>(all.size() / 2));
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}
