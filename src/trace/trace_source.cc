#include "trace/trace_source.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace texcache {

MemoryTraceSource::MemoryTraceSource(const TexelTrace &trace,
                                     uint64_t frames,
                                     uint32_t chunk_records)
    : trace_(trace), frames_(frames), chunkRecords_(chunk_records)
{
    fatal_if(!frames, "trace source with zero frames");
    fatal_if(!chunk_records || !isPowerOfTwo(chunk_records),
             "chunk size ", chunk_records, " not a power of two");
    perFrame_ =
        (trace.size() + chunkRecords_ - 1) / chunkRecords_;
}

uint64_t
MemoryTraceSource::records() const
{
    return trace_.size() * frames_;
}

uint64_t
MemoryTraceSource::chunkCount() const
{
    return perFrame_ * frames_;
}

void
MemoryTraceSource::visitChunks(
    uint64_t begin, uint64_t end,
    const std::function<void(const uint64_t *, size_t)> &fn) const
{
    panic_if(begin > end || end > chunkCount(), "chunk range [", begin,
             ", ", end, ") of ", chunkCount());
    const uint64_t *base = trace_.packed().data();
    for (uint64_t c = begin; c < end; ++c) {
        uint64_t idx = c % perFrame_; // chunk within its frame
        uint64_t b = idx * chunkRecords_;
        uint64_t n =
            std::min<uint64_t>(chunkRecords_, trace_.size() - b);
        fn(base + b, n);
    }
}

FileTraceSource::FileTraceSource(const std::string &path,
                                 uint64_t frames)
    : file_(ChunkedTraceFile::mustOpen(path)), frames_(frames)
{
    fatal_if(!frames, "trace source with zero frames");
}

uint64_t
FileTraceSource::records() const
{
    return file_.info().records * frames_;
}

uint64_t
FileTraceSource::chunkCount() const
{
    return file_.info().chunks() * frames_;
}

void
FileTraceSource::visitChunks(
    uint64_t begin, uint64_t end,
    const std::function<void(const uint64_t *, size_t)> &fn) const
{
    panic_if(begin > end || end > chunkCount(), "chunk range [", begin,
             ", ", end, ") of ", chunkCount());
    uint64_t perFrame = file_.info().chunks();
    // Visit per frame-aligned sub-range so each pass through the file
    // is one sequential cursor.
    uint64_t c = begin;
    while (c < end) {
        uint64_t idx = c % perFrame;
        uint64_t n = std::min(end - c, perFrame - idx);
        file_.visitChunks(idx, idx + n, fn);
        c += n;
    }
}

} // namespace texcache
