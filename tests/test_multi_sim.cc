/** @file
 * Correctness of the single-pass multi-configuration simulators
 * (cache/multi_sim.hh) against brute-force per-config CacheSim
 * replays: the sweep engine must be an optimization, never an
 * approximation. Covers synthetic random streams, the adversarial
 * stack patterns for the profiler's top-of-stack fast path, and the
 * four real benchmark scenes end to end through runFaSweep /
 * runCacheSweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/multi_sim.hh"
#include "core/experiment.hh"
#include "core/scene_layout.hh"

using namespace texcache;

namespace {

/** Texture-like synthetic stream: local walk with occasional jumps. */
std::vector<Addr>
syntheticStream(size_t n, uint32_t seed)
{
    std::vector<Addr> out;
    out.reserve(n);
    uint32_t x = seed;
    uint64_t cursor = 0;
    for (size_t i = 0; i < n; ++i) {
        x = x * 1664525u + 1013904223u;
        if ((x >> 24) < 8)
            cursor = (x >> 4) & 0xfffff;
        else
            cursor = (cursor + ((x >> 8) & 0xff)) & 0xfffff;
        out.push_back(cursor);
    }
    return out;
}

/** Brute-force reference: one full CacheSim replay of @p config. */
CacheStats
bruteForce(const std::vector<Addr> &stream, const CacheConfig &config)
{
    CacheSim sim(config);
    for (Addr a : stream)
        sim.access(a);
    return sim.stats();
}

void
expectSame(const CacheStats &got, const CacheStats &want,
           const std::string &what)
{
    EXPECT_EQ(got.accesses, want.accesses) << what;
    EXPECT_EQ(got.misses, want.misses) << what;
    EXPECT_EQ(got.coldMisses, want.coldMisses) << what;
}

const std::vector<uint64_t> kSizes = {2 << 10, 8 << 10, 32 << 10,
                                      128 << 10};
const unsigned kLines[] = {32, 128};

} // namespace

TEST(FaCapacitySweep, MatchesBruteForceOnRandomStream)
{
    std::vector<Addr> stream = syntheticStream(200000, 7);
    for (unsigned line : kLines) {
        FaCapacitySweep sweep(line, kSizes);
        sweep.accessRange(stream.data(), stream.size());
        std::vector<CacheStats> got = sweep.stats();
        ASSERT_EQ(got.size(), kSizes.size());
        for (size_t i = 0; i < kSizes.size(); ++i) {
            CacheStats want = bruteForce(
                stream, {kSizes[i], line, CacheConfig::kFullyAssoc});
            expectSame(got[i], want,
                       "line=" + std::to_string(line) +
                           " size=" + std::to_string(kSizes[i]));
        }
    }
}

TEST(FaCapacitySweep, HandlesUnsortedSizesAndTinyCaches)
{
    std::vector<Addr> stream = syntheticStream(50000, 99);
    std::vector<uint64_t> sizes = {64 << 10, 1 << 10, 4 << 10, 256};
    FaCapacitySweep sweep(64, sizes);
    sweep.accessRange(stream.data(), stream.size());
    std::vector<CacheStats> got = sweep.stats();
    for (size_t i = 0; i < sizes.size(); ++i) {
        CacheStats want =
            bruteForce(stream, {sizes[i], 64, CacheConfig::kFullyAssoc});
        expectSame(got[i], want, "size=" + std::to_string(sizes[i]));
    }
}

// Adversarial patterns for the profiler's top-of-stack fast path: tight
// cycles that live entirely inside the array, cycles one longer than
// it, and interleavings that repeatedly promote deep lines across the
// array boundary.
TEST(FaCapacitySweep, StackFastPathBoundaryPatterns)
{
    std::vector<std::vector<Addr>> streams;
    for (size_t cycle : {2u, 4u, 8u, 9u, 16u}) {
        std::vector<Addr> s;
        for (int rep = 0; rep < 200; ++rep)
            for (size_t i = 0; i < cycle; ++i)
                s.push_back(i * 64);
        streams.push_back(std::move(s));
    }
    {
        // Sawtooth: 0..n..0 touches every depth from 1 to n.
        std::vector<Addr> s;
        for (int rep = 0; rep < 50; ++rep) {
            for (int i = 0; i < 24; ++i)
                s.push_back(static_cast<Addr>(i) * 64);
            for (int i = 23; i >= 0; --i)
                s.push_back(static_cast<Addr>(i) * 64);
        }
        streams.push_back(std::move(s));
    }
    std::vector<uint64_t> sizes = {256, 512, 1024, 4096};
    for (size_t k = 0; k < streams.size(); ++k) {
        FaCapacitySweep sweep(64, sizes);
        sweep.accessRange(streams[k].data(), streams[k].size());
        std::vector<CacheStats> got = sweep.stats();
        for (size_t i = 0; i < sizes.size(); ++i) {
            CacheStats want = bruteForce(
                streams[k], {sizes[i], 64, CacheConfig::kFullyAssoc});
            expectSame(got[i], want,
                       "stream=" + std::to_string(k) +
                           " size=" + std::to_string(sizes[i]));
        }
    }
}

TEST(GroupSim, MatchesIndividualSims)
{
    std::vector<Addr> stream = syntheticStream(100000, 21);
    std::vector<CacheConfig> configs = {
        {16 << 10, 64, 1},
        {16 << 10, 64, 2},
        {16 << 10, 64, 4},
        {16 << 10, 64, CacheConfig::kFullyAssoc},
    };
    GroupSim group(configs);
    group.accessRange(stream.data(), stream.size());
    std::vector<CacheStats> got = group.stats();
    ASSERT_EQ(got.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i)
        expectSame(got[i], bruteForce(stream, configs[i]),
                   configs[i].str());
}

// The end-to-end contract on the real workloads: for every benchmark
// scene, the collapsed sweep reproduces per-config runCache replays
// exactly - at three capacities and two line sizes, through the real
// trace -> layout mapping.
TEST(RunFaSweep, MatchesRunCacheOnAllFourScenes)
{
    TraceStore store;
    std::vector<uint64_t> sizes = {4 << 10, 16 << 10, 64 << 10};
    for (BenchScene s : allBenchScenes()) {
        RasterOrder order;
        order.dir = paperScanDirection(s);
        const TexelTrace &trace = store.trace(s, order);
        LayoutParams params;
        params.kind = LayoutKind::Nonblocked;
        SceneLayout layout(store.scene(s), params);
        for (unsigned line : {32u, 64u}) {
            std::vector<CacheStats> got =
                runFaSweep(trace, layout, line, sizes);
            ASSERT_EQ(got.size(), sizes.size());
            for (size_t i = 0; i < sizes.size(); ++i) {
                CacheStats want = runCache(
                    trace, layout,
                    {sizes[i], line, CacheConfig::kFullyAssoc});
                expectSame(got[i], want,
                           std::string(benchSceneName(s)) + " line=" +
                               std::to_string(line) +
                               " size=" + std::to_string(sizes[i]));
            }
        }
    }
}

// runCacheSweep routes a mixed FA + set-associative config list
// through the fewest passes; the result must align with the input
// order and match per-config replays bit for bit.
TEST(RunCacheSweep, MixedConfigListMatchesPerConfigReplays)
{
    TraceStore store;
    RasterOrder order;
    order.dir = paperScanDirection(BenchScene::Goblet);
    const TexelTrace &trace = store.trace(BenchScene::Goblet, order);
    LayoutParams params;
    params.kind = LayoutKind::Blocked;
    params.blockW = 4;
    params.blockH = 4;
    SceneLayout layout(store.scene(BenchScene::Goblet), params);

    std::vector<CacheConfig> configs = {
        {8 << 10, 64, CacheConfig::kFullyAssoc},
        {8 << 10, 64, 2},
        {32 << 10, 64, CacheConfig::kFullyAssoc},
        {8 << 10, 64, 1},
        {8 << 10, 32, CacheConfig::kFullyAssoc},
        {32 << 10, 64, 4},
    };
    std::vector<CacheStats> got = runCacheSweep(trace, layout, configs);
    ASSERT_EQ(got.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i)
        expectSame(got[i], runCache(trace, layout, configs[i]),
                   configs[i].str());
}
