/**
 * @file
 * The Guitar benchmark: a guitar on a table, built from few, large
 * triangles with textures that are *not* uniformly oriented on screen
 * (paper Fig 4.3).
 *
 * Published characteristics targeted (Table 4.1): 800x800, ~719
 * triangles with a large ~1867 px average area, 8 textures totalling
 * ~4.9 MB. The mixed texture orientations make the scene insensitive to
 * the rasterization direction under the nonblocked representation,
 * while the large triangles make it respond strongly to tiled
 * rasterization (Fig 6.2).
 */

#include <cmath>

#include "img/procedural.hh"
#include "scene/benchmarks.hh"
#include "scene/mesh_util.hh"

namespace texcache {

namespace {

constexpr uint16_t kBodyTex = 0;      // 512x512 wood
constexpr uint16_t kTableTex = 1;     // 512x512 wood
constexpr uint16_t kFretboardTex = 2; // 256x256
constexpr uint16_t kHeadTex = 3;
constexpr uint16_t kPickguardTex = 4;
constexpr uint16_t kRosetteTex = 5;
constexpr uint16_t kBridgeTex = 6;
constexpr uint16_t kStringTex = 7;

constexpr float kPi = 3.14159265f;

/** Rotate a point in the xy plane about the origin. */
Vec3
rot(Vec3 p, float angle)
{
    float c = std::cos(angle), s = std::sin(angle);
    return {c * p.x - s * p.y, s * p.x + c * p.y, p.z};
}

/** Append a textured disc as a triangle fan (n triangles). */
void
addDisc(Scene &scene, uint16_t tex, Vec3 center, float rx, float ry,
        float z, unsigned n, float angle, float shade)
{
    auto rim = [&](unsigned i) {
        float a = 2.0f * kPi * static_cast<float>(i) / n;
        Vec3 p{center.x + rx * std::cos(a), center.y + ry * std::sin(a),
               z};
        SceneVertex v;
        v.pos = rot(p, angle);
        v.uv = {0.5f + 0.30f * std::cos(a), 0.5f + 0.30f * std::sin(a)};
        v.shade = shade;
        return v;
    };
    SceneVertex c;
    c.pos = rot(Vec3{center.x, center.y, z}, angle);
    c.uv = {0.5f, 0.5f};
    c.shade = shade;
    for (unsigned i = 0; i < n; ++i) {
        scene.triangles.push_back({{c, rim(i), rim((i + 1) % n)}, tex});
    }
}

/** Append an annulus (ring) of 2n triangles. */
void
addRing(Scene &scene, uint16_t tex, Vec3 center, float r0, float r1,
        float z, unsigned n, float angle, float shade)
{
    auto at = [&](unsigned i, float r) {
        float a = 2.0f * kPi * static_cast<float>(i) / n;
        SceneVertex v;
        v.pos = rot(Vec3{center.x + r * std::cos(a),
                         center.y + r * std::sin(a), z},
                    angle);
        v.uv = {0.5f + 0.30f * (r / r1) * std::cos(a),
                0.5f + 0.30f * (r / r1) * std::sin(a)};
        v.shade = shade;
        return v;
    };
    for (unsigned i = 0; i < n; ++i) {
        unsigned j = (i + 1) % n;
        SceneVertex a0 = at(i, r0), a1 = at(j, r0);
        SceneVertex b0 = at(i, r1), b1 = at(j, r1);
        scene.triangles.push_back({{a0, b0, b1}, tex});
        scene.triangles.push_back({{a0, b1, a1}, tex});
    }
}

} // namespace

Scene
makeGuitarScene()
{
    Scene scene;
    scene.name = "Guitar";
    scene.screenW = 800;
    scene.screenH = 800;

    scene.textures.emplace_back(makeWood(512, 512, 11u));   // body
    scene.textures.emplace_back(makeWood(512, 512, 23u));   // table
    scene.textures.emplace_back(makeWood(256, 256, 31u));   // fretboard
    scene.textures.emplace_back(makeWood(256, 256, 41u));   // headstock
    scene.textures.emplace_back(makeMarble(256, 51u));      // pickguard
    scene.textures.emplace_back(makeChecker(256, 16,
                                            Rgba8{180, 150, 90, 255},
                                            Rgba8{60, 40, 20, 255}));
    scene.textures.emplace_back(makeWood(256, 256, 61u));   // bridge
    scene.textures.emplace_back(makeMarble(256, 71u));      // strings

    Vec3 light{0.2f, -0.3f, -1.0f};
    float body_shade = lambertShade(Vec3{0.05f, 0.1f, 1}, light);

    // The guitar lies diagonally across the table.
    const float tilt = 0.6f; // ~34 degrees

    // Table: two large patches with differently rotated texture axes
    // (5x5 each = 100 triangles).
    addQuadPatch(scene, kTableTex, Vec3{-2.4f, -2.4f, 0}, Vec3{2.4f,
                 -2.4f, 0}, Vec3{2.4f, 0.0f, 0}, Vec3{-2.4f, 0.0f, 0},
                 Vec2{0, 0}, Vec2{0.8f, 0.4f}, 5, 5, light);
    // Second half with the texture axis rotated 90 degrees on screen,
    // so the scene has no dominant texture orientation.
    addQuadPatch(scene, kTableTex, Vec3{2.4f, 0.0f, 0}, Vec3{2.4f, 2.4f,
                 0}, Vec3{-2.4f, 2.4f, 0}, Vec3{-2.4f, 0.0f, 0},
                 Vec2{0, 0}, Vec2{0.4f, 0.8f}, 5, 5, light);

    // Body: lower bout (150 tris) + upper bout (120 tris).
    addDisc(scene, kBodyTex, Vec3{0.0f, -0.55f, 0}, 1.05f, 0.95f, 0.05f,
            150, tilt, body_shade);
    addDisc(scene, kBodyTex, Vec3{0.0f, 0.55f, 0}, 0.80f, 0.72f, 0.05f,
            120, tilt, body_shade);

    // Rosette around the sound hole (2*40 = 80 tris).
    addRing(scene, kRosetteTex, Vec3{0.0f, 0.15f, 0}, 0.16f, 0.30f,
            0.06f, 40, tilt, body_shade);

    // Pickguard (50 tris).
    addDisc(scene, kPickguardTex, Vec3{0.45f, -0.35f, 0}, 0.34f, 0.26f,
            0.06f, 50, tilt, body_shade);

    // Neck: long diagonal strip, 2 x 12 subdivisions (48 tris) plus
    // fretboard overlay 2 x 12 (48 tris).
    {
        Vec3 n0 = rot(Vec3{-0.16f, 1.1f, 0.06f}, tilt);
        Vec3 n1 = rot(Vec3{0.16f, 1.1f, 0.06f}, tilt);
        Vec3 n2 = rot(Vec3{0.12f, 2.9f, 0.06f}, tilt);
        Vec3 n3 = rot(Vec3{-0.12f, 2.9f, 0.06f}, tilt);
        addQuadPatch(scene, kFretboardTex, n0, n1, n2, n3, Vec2{0, 0},
                     Vec2{1, 4}, 2, 12, light);
        Vec3 f0 = rot(Vec3{-0.13f, 1.1f, 0.08f}, tilt);
        Vec3 f1 = rot(Vec3{0.13f, 1.1f, 0.08f}, tilt);
        Vec3 f2 = rot(Vec3{0.10f, 2.75f, 0.08f}, tilt);
        Vec3 f3 = rot(Vec3{-0.10f, 2.75f, 0.08f}, tilt);
        addQuadPatch(scene, kFretboardTex, f0, f1, f2, f3, Vec2{0, 0},
                     Vec2{1, 4}, 2, 12, light);
    }

    // Headstock (4x4 = 32 tris).
    {
        Vec3 h0 = rot(Vec3{-0.22f, 2.9f, 0.07f}, tilt);
        Vec3 h1 = rot(Vec3{0.22f, 2.9f, 0.07f}, tilt);
        Vec3 h2 = rot(Vec3{0.18f, 3.5f, 0.07f}, tilt);
        Vec3 h3 = rot(Vec3{-0.18f, 3.5f, 0.07f}, tilt);
        addQuadPatch(scene, kHeadTex, h0, h1, h2, h3, Vec2{0, 0},
                     Vec2{1, 1}, 4, 4, light);
    }

    // Bridge (2x2 = 8 tris).
    {
        Vec3 b0 = rot(Vec3{-0.30f, -0.95f, 0.07f}, tilt);
        Vec3 b1 = rot(Vec3{0.30f, -0.95f, 0.07f}, tilt);
        Vec3 b2 = rot(Vec3{0.30f, -0.75f, 0.07f}, tilt);
        Vec3 b3 = rot(Vec3{-0.30f, -0.75f, 0.07f}, tilt);
        addQuadPatch(scene, kBridgeTex, b0, b1, b2, b3, Vec2{0, 0},
                     Vec2{1, 1}, 2, 2, light);
    }

    // Six strings: thin quads, 1 x 8 subdivisions each (96 tris).
    for (int s = 0; s < 6; ++s) {
        float x = -0.10f + 0.04f * static_cast<float>(s);
        Vec3 s0 = rot(Vec3{x - 0.006f, -0.85f, 0.09f}, tilt);
        Vec3 s1 = rot(Vec3{x + 0.006f, -0.85f, 0.09f}, tilt);
        Vec3 s2 = rot(Vec3{x + 0.006f, 2.9f, 0.09f}, tilt);
        Vec3 s3 = rot(Vec3{x - 0.006f, 2.9f, 0.09f}, tilt);
        addQuadPatch(scene, kStringTex, s0, s1, s2, s3, Vec2{0, 0},
                     Vec2{1, 8}, 1, 8, light);
    }

    // Total: 100 + 270 + 80 + 50 + 96 + 32 + 8 + 96 = 732 (paper: 719).

    scene.view = Mat4::lookAt(Vec3{0.15f, 0.25f, 4.4f},
                              Vec3{0.15f, 0.25f, 0.0f}, Vec3{0, 1, 0});
    scene.proj = Mat4::perspective(/*fovy=*/1.0f, /*aspect=*/1.0f,
                                   /*near=*/0.5f, /*far=*/50.0f);
    return scene;
}

} // namespace texcache
