/**
 * @file
 * Reproduces Table 4.1: texture mapping benchmark characteristics.
 *
 * Paper values for reference:
 *   Scene   Res        Tris  Area  W   H   Tex  Store  Used   Used%  PixM
 *   Flight  1280x1024  9152  294   38  20  15   56MB   6.3MB  11%    1.4
 *   Town    1280x1024  5317  1149  67  23  51   4.7MB  1.8MB  38%    2.1
 *   Guitar  800x800    719   1867  72  94  8    4.9MB  1.1MB  23%    0.7
 *   Goblet  800x800    7200  41    25  14  1    1.4MB  0.78MB 56%    0.3
 */

#include <unordered_set>

#include "bench/bench_util.hh"
#include "trace/trace_stats.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

/** Unique texels touched anywhere in the trace, in bytes. */
uint64_t
uniqueTexelBytes(const TexelTrace &trace)
{
    std::unordered_set<uint64_t> uniq;
    trace.forEach([&](const TexelRecord &r) {
        uniq.insert(static_cast<uint64_t>(r.u) |
                    (static_cast<uint64_t>(r.v) << 16) |
                    (static_cast<uint64_t>(r.level) << 32) |
                    (static_cast<uint64_t>(r.texture) << 37));
    });
    return uniq.size() * kBytesPerTexel;
}

} // namespace

int
main()
{
    TextTable table(
        "Table 4.1: Texture Mapping Benchmarks (measured on the "
        "reproduction scenes)");
    table.header({"Scene", "Resolution", "Triangles", "AvgArea(px)",
                  "AvgW", "AvgH", "Textures", "Storage(MB)", "Used(MB)",
                  "Used(%)", "PixTex(M)"});

    for (BenchScene s : allBenchScenes()) {
        const Scene &scene = store().scene(s);
        const RenderOutput &out = store().output(s, sceneOrder(s));

        double storage_mb = scene.textureStorageBytes() / 1048576.0;
        double used_mb = uniqueTexelBytes(out.trace) / 1048576.0;

        table.row({scene.name,
                   std::to_string(scene.screenW) + "x" +
                       std::to_string(scene.screenH),
                   std::to_string(scene.triangles.size()),
                   fmtFixed(out.stats.avgTriangleArea(), 0),
                   fmtFixed(out.stats.avgTriangleWidth(), 0),
                   fmtFixed(out.stats.avgTriangleHeight(), 0),
                   std::to_string(scene.textures.size()),
                   fmtFixed(storage_mb, 1), fmtFixed(used_mb, 2),
                   fmtPercent(used_mb / storage_mb, 0),
                   fmtFixed(out.stats.fragments / 1e6, 2)});
    }
    table.print(std::cout);
    // No gated metrics, but the manifest carries the trace-generation
    // accounting (render wall-clock, thread count) that run_all.sh
    // folds into its per-bench split.
    dumpStats("table_4_1");
    return 0;
}
