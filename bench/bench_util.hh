/**
 * @file
 * Shared glue for the figure/table reproduction binaries.
 *
 * Every bench binary renders scenes through a process-local TraceStore,
 * replays the texel trace under the layouts/caches its figure sweeps,
 * and prints the same rows or series the paper reports. Absolute miss
 * rates depend on our synthetic stand-in scenes; the *shapes* (who
 * wins, crossover points) are the reproduction targets recorded in
 * EXPERIMENTS.md.
 */

#ifndef TEXCACHE_BENCH_BENCH_UTIL_HH
#define TEXCACHE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/run_manifest.hh"
#include "core/sweep.hh"
#include "prof/prof.hh"
#include "stats/stats.hh"
#include "tracing/tracing.hh"

namespace texcache {
namespace benchutil {

/** The square-ish block dimensions whose storage equals a line size. */
inline LayoutParams
blockedForLine(unsigned line_bytes, LayoutKind kind = LayoutKind::Blocked)
{
    LayoutParams p;
    p.kind = kind;
    switch (line_bytes) {
      case 16:
        p.blockW = 2;
        p.blockH = 2;
        break;
      case 32:
        p.blockW = 4;
        p.blockH = 2;
        break;
      case 64:
        p.blockW = 4;
        p.blockH = 4;
        break;
      case 128:
        p.blockW = 8;
        p.blockH = 4;
        break;
      case 256:
        p.blockW = 8;
        p.blockH = 8;
        break;
      case 512:
        p.blockW = 16;
        p.blockH = 8;
        break;
      default:
        fatal("no block shape for line size ", line_bytes);
    }
    return p;
}

/** The paper's per-scene scan direction, optionally tiled. */
inline RasterOrder
sceneOrder(BenchScene s, bool tiled = false, unsigned tile = 8)
{
    RasterOrder order;
    order.dir = paperScanDirection(s);
    if (tiled) {
        order.tiled = true;
        order.tileW = tile;
        order.tileH = tile;
    }
    return order;
}

/** Process-wide trace store shared by one bench binary. */
inline TraceStore &
store()
{
    static TraceStore s;
    return s;
}

/** Register the most recent top-level Sweep::run's engine counters. */
inline void
exportSweepStats(stats::Group &g)
{
    SweepRunStats s = Sweep::lastRunStats();
    g.constant("points", s.points, "sweep points executed");
    g.constant("threads", s.threads, "worker threads used");
    g.constant("steals", s.steals, "successful work-steal operations");
    g.real("wall_ms", s.wallMillis, "whole-run wall-clock");
    g.real("busy_ms", s.busyMillis,
           "point execution time summed over workers");
    g.real("utilization", s.utilization(),
           "busy time / (threads * wall-clock)");
}

/** Trace-generation accounting for @p ts: how much of the bench's
 *  wall-clock went to rendering traces (as opposed to replaying them
 *  through the simulators), and whether the on-disk cache helped.
 *  tools/run_all.sh reads these to print the per-bench split. */
inline void
exportTraceGenStats(stats::Group &g, const TraceStore &ts)
{
    g.real("render_wall_ms", ts.renderMillis(),
           "wall-clock spent rendering traces");
    g.constant("renders", ts.renders(), "fresh scene renders");
    g.constant("disk_trace_hits", ts.diskHits(),
               "traces served from the on-disk cache");
    g.constant("threads", Sweep::threadCount(),
               "render/sweep worker threads");
}

/** Histogram the per-point wall-clocks of a Sweep::run result set. */
template <typename T>
inline void
exportPointTimes(stats::Group &g, const std::vector<SweepResult<T>> &rs)
{
    stats::Distribution &d = g.distribution(
        "point_us", "per-point wall-clock in microseconds");
    for (const SweepResult<T> &r : rs)
        d.sample(static_cast<uint64_t>(r.millis * 1e3));
}

/**
 * Write the bench's BENCH_<bench>.json run manifest plus stats tree.
 * The sweep engine's counters for the last top-level Sweep::run are
 * always included under "sweep"; @p fill adds the bench's config rows,
 * gated metrics and subsystem stats. The path is reported via inform()
 * (stderr) only, so bench stdout - the reproduced tables - stays
 * byte-identical whether or not anyone reads the manifest.
 */
inline void
dumpStats(const std::string &bench,
          const std::function<void(RunManifest &, stats::Group &)>
              &fill = {})
{
    RunManifest manifest(bench);
    stats::Group root;
    exportSweepStats(root.group("sweep"));
    exportTraceGenStats(root.group("trace_gen"), store());
    if (fill)
        fill(manifest, root);
    // When TEXCACHE_TRACE is on, flush the buffered events next to
    // the manifest and record the paths + drop/sample accounting in
    // it; with tracing off this is one branch.
    if (tracing::active()) {
        tracing::DumpInfo t = tracing::dumpToFiles(bench);
        manifest.setTrace({t.chromePath, t.eventsPath, t.recorded,
                           t.dropped, t.sampleN});
    }
    // Same discipline for the sampling profiler: TEXCACHE_PROF_HZ
    // armed it before main(), so flush PROF_<bench>.* next to the
    // manifest and register the paths; disarmed this is one branch.
    if (prof::armed()) {
        prof::DumpInfo p = prof::dumpToFiles(bench);
        manifest.setProfile({p.collapsedPath, p.speedscopePath,
                             p.samples, p.dropped, p.hz});
    }
    manifest.writeFile(&root);
}

} // namespace benchutil
} // namespace texcache

#endif // TEXCACHE_BENCH_BENCH_UTIL_HH
