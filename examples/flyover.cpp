/**
 * @file
 * Animated flyover: renders consecutive frames of the Flight
 * benchmark's camera path through one *persistent* texture cache,
 * reporting per-frame miss rate and memory bandwidth.
 *
 * This is the steady-state view a real system sees: after the first
 * frame's cold start, the per-frame miss rate is what the memory
 * system must sustain. Compare a cache-sized store (intra-frame
 * locality only) against a texture-memory-sized store (inter-frame
 * locality too; see bench/ablate_interframe).
 *
 * Usage: flyover [num_frames]
 */

#include <cstdlib>
#include <iostream>

#include "cache/bandwidth.hh"
#include "cache/cache_sim.hh"
#include "common/table.hh"
#include "core/scene_layout.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

using namespace texcache;

int
main(int argc, char **argv)
{
    unsigned frames = argc > 1
                          ? static_cast<unsigned>(std::atoi(argv[1]))
                          : 5;
    fatal_if(frames == 0, "need at least one frame");

    std::cerr << "building Flight...\n";
    Scene frame0 = makeFlightSceneAt(0.0f);

    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;
    SceneLayout layout(frame0, params);

    constexpr unsigned kLine = 128;
    CacheSim cache({32 * 1024, kLine, 2});
    FullyAssocLru big(32 << 20, kLine); // texture-memory-sized store
    MachineModel machine;

    TextTable table("Flight flyover: persistent 32KB cache vs 32MB "
                    "store, per frame");
    table.header({"Frame", "Fragments", "32KB miss", "32KB BW (MB/s)",
                  "32MB miss"});

    for (unsigned f = 0; f < frames; ++f) {
        Scene scene = makeFlightSceneAt(static_cast<float>(f));
        RenderOptions opts;
        opts.writeFramebuffer = false;
        opts.countRepetition = false;
        RenderOutput out =
            render(scene, RasterOrder::tiledOrder(8, 8), opts);

        uint64_t m0 = cache.stats().misses;
        uint64_t a0 = cache.stats().accesses;
        uint64_t bm0 = big.stats().misses;
        layout.forEachAddress(out.trace, [&](Addr a) {
            cache.access(a);
            big.access(a);
        });
        uint64_t accesses = cache.stats().accesses - a0;
        double miss = static_cast<double>(cache.stats().misses - m0) /
                      accesses;
        double big_miss =
            static_cast<double>(big.stats().misses - bm0) / accesses;

        table.row({std::to_string(f),
                   std::to_string(out.stats.fragments),
                   fmtPercent(miss),
                   fmtFixed(machine.cachedBandwidth(miss, kLine) / 1e6,
                            0),
                   fmtPercent(big_miss)});
    }
    table.print(std::cout);
    std::cout << "\nThe 32KB cache's per-frame miss rate is steady "
                 "(intra-frame working sets only); the 32MB store's "
                 "drops sharply after frame 0 (inter-frame reuse).\n";
    return 0;
}
