/**
 * @file
 * texcached service engine: admission control, request batching, and
 * service-latency statistics over the uniform request runner.
 *
 * The engine owns one dispatcher thread and one bounded request
 * queue. submit() parses and validates on the submitting thread (so
 * hostile bytes never reach the dispatcher) and returns a future that
 * resolves to the response body - a deterministic manifest on
 * success, a typed error JSON otherwise. Admission control is
 * submit-time: when the queue is at depth, the request is rejected
 * with a queue_full error instead of blocking the socket thread.
 *
 * Batching: sweep requests sharing a batch key (scene, raster order,
 * layout - i.e. the same address-stream replay) that are queued
 * together fold into one runCacheSweep() pass over the union of their
 * configurations. The dispatcher waits one batch window after the
 * first batchable request before collecting, giving concurrent
 * clients a chance to coalesce. Because runCacheSweep() is exact for
 * every partitioning (Mattson inclusion for FA, independent sims for
 * SA), a folded request's manifest is byte-identical to the one the
 * direct path produces - the property tests/test_service.cc pins.
 *
 * The TraceStore is not internally synchronized; the engine touches
 * it from the dispatcher thread only. Simulation inside a pass still
 * fans out over the process-wide sweep pool.
 *
 * Stats (dumped by the daemon on SIGTERM and on a "stats" control
 * request): accepted/rejected/batched request counters, batch and
 * fold accounting, a queue-depth distribution sampled at every
 * enqueue, and a service-latency distribution (microseconds,
 * enqueue -> response) whose dump carries p50/p95/p99.
 *
 * Telemetry (this layer's live view):
 *  - every admitted request gets a monotonically increasing id and,
 *    when span tracing is on, an async-span lifetime: "svc.request"
 *    (admission -> response) containing "svc.queue" (admission ->
 *    collection) and "svc.execute" (batch membership -> response),
 *    all correlated by the request id, so a Perfetto view of a loaded
 *    daemon shows each request's life and which batch served it;
 *  - snapshot() captures the stats tree plus live gauges (current
 *    queue depth, busy flag) and host perf-counter totals without
 *    pausing the dispatcher; metricsText() renders it as Prometheus
 *    exposition for the "metrics" control request;
 *  - per-batch host perf deltas (cycles, LLC misses per member) feed
 *    the "perf" stats group when perf_event_open is available;
 *  - TEXCACHE_SLOW_REQ_MS=N logs one structured JSON line to stderr
 *    for every request slower than N ms, and counts them.
 */

#ifndef TEXCACHE_SERVICE_ENGINE_HH
#define TEXCACHE_SERVICE_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "service/request.hh"
#include "stats/snapshot.hh"
#include "stats/stats.hh"

namespace texcache {
namespace service {

/** Batching + admission front end over runServiceRequest(). */
class ServiceEngine
{
  public:
    struct Options
    {
        size_t queueDepth = 64;     ///< admission-control bound
        unsigned batchWindowMs = 5; ///< coalescing wait after first
        /** Start with the dispatcher paused: requests queue but none
         *  execute until resume(). Lets tests enqueue a known set and
         *  assert it folds into exactly one batch. */
        bool startPaused = false;
    };

    explicit ServiceEngine(TraceStore &store);
    ServiceEngine(TraceStore &store, Options opts);

    /** Drains the queue (every pending future resolves) and joins. */
    ~ServiceEngine();

    ServiceEngine(const ServiceEngine &) = delete;
    ServiceEngine &operator=(const ServiceEngine &) = delete;

    /**
     * Parse, validate and enqueue one request body. The future always
     * resolves: to a manifest for accepted simulation requests, to a
     * control response (ping/stats/shutdown), or to a typed error
     * body (parse_error, bad_request, queue_full, shutting_down).
     */
    std::future<std::string> submit(std::string_view body);

    /** Hold the dispatcher (startPaused companion). */
    void pause();
    /** Release the dispatcher. */
    void resume();

    /**
     * Stop admitting simulation requests; queued work still runs.
     * Control requests keep working so a draining daemon stays
     * observable.
     */
    void beginShutdown();

    /** A shutdown control request was received (daemon poll). */
    bool shutdownRequested() const;

    /** Block until the queue is empty and no batch is in flight. */
    void drain();

    /** Current queue depth (tests, admission diagnostics). */
    size_t queueDepth() const;

    /** Root of the service stats tree ("service"). */
    const stats::Group &statsRoot() const { return statsRoot_; }

    /** Pretty JSON document of the stats tree (control response). */
    std::string statsJson() const;

    /**
     * Consistent point-in-time snapshot of the stats tree plus live
     * gauges (queue_depth_now, busy, accepting) and host perf-counter
     * totals. Takes the stats mutex only for the capture itself - the
     * dispatcher is never paused.
     */
    stats::Snapshot snapshot() const;

    /** Prometheus exposition text of snapshot() ("metrics" control
     *  response); rendered outside the lock. */
    std::string metricsText() const;

  private:
    struct Pending
    {
        ServiceRequest req;
        std::promise<std::string> promise;
        std::chrono::steady_clock::time_point enqueued;
        uint64_t id = 0; ///< admission-assigned request id
    };

    void dispatchLoop();
    /** Run one batch (>= 1 request, all same key when > 1). */
    void runBatch(std::vector<Pending> batch);
    /** Resolve one pending request and record its latency. */
    void finish(Pending &p, std::string body);

    TraceStore &store_;
    Options opts_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;      ///< dispatcher wakeups
    std::condition_variable idleCv_;  ///< drain() wakeups
    std::deque<Pending> queue_;
    bool paused_ = false;
    bool stopping_ = false;   ///< destructor: exit once drained
    bool accepting_ = true;   ///< beginShutdown clears
    bool shutdownReq_ = false;
    bool busy_ = false;       ///< a batch is executing
    uint64_t nextId_ = 0;     ///< request-id source (admission order)

    /** TEXCACHE_SLOW_REQ_MS threshold; negative = logging disabled. */
    double slowReqMs_ = -1.0;

    // --- statistics (guarded by mutex_) ---
    stats::Group statsRoot_{"service"};
    stats::Scalar &accepted_;
    stats::Scalar &rejectedFull_;
    stats::Scalar &rejectedParse_;
    stats::Scalar &rejectedBad_;
    stats::Scalar &rejectedShutdown_;
    stats::Scalar &controlRequests_;
    stats::Scalar &batchable_;
    stats::Scalar &batches_;
    stats::Scalar &foldedRequests_; ///< members of multi-request batches
    stats::Scalar &slowRequests_;   ///< over the TEXCACHE_SLOW_REQ_MS bar
    stats::Distribution &queueDepthDist_;
    stats::Distribution &latencyUs_;
    /** Host perf deltas per batch, spread over its members; only
     *  sampled when perf_event_open is available. */
    stats::Scalar &perfAvailable_;
    stats::Distribution &cyclesPerRequest_;
    stats::Distribution &llcMissesPerRequest_;

    std::thread dispatcher_;
};

} // namespace service
} // namespace texcache

#endif // TEXCACHE_SERVICE_ENGINE_HH
