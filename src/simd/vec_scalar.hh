/**
 * @file
 * Width-1 traits for the kernel body: plain C++ float/int ops. This is
 * the portable fallback (and the forced-scalar ablation baseline); by
 * construction it performs literally the reference's operations, one
 * fragment per "vector".
 */

#ifndef TEXCACHE_SIMD_VEC_SCALAR_HH
#define TEXCACHE_SIMD_VEC_SCALAR_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace texcache {
namespace simd {

struct VecScalar
{
    static constexpr int kW = 1;
    using f32 = float;
    using i32 = int32_t;
    using m32 = bool;

    static f32 set1(float x) { return x; }
    static i32 iset1(int32_t x) { return x; }
    static f32 load(const float *p) { return *p; }
    static i32 iload(const int32_t *p) { return *p; }
    static void store(float *p, f32 v) { *p = v; }
    static void istore(int32_t *p, i32 v) { *p = v; }
    static f32 toF(i32 v) { return static_cast<float>(v); }
    static f32 add(f32 a, f32 b) { return a + b; }
    static f32 sub(f32 a, f32 b) { return a - b; }
    static f32 mul(f32 a, f32 b) { return a * b; }
    static f32 div(f32 a, f32 b) { return a / b; }
    static f32 sqrt(f32 a) { return std::sqrt(a); }
    static f32 floor(f32 a) { return std::floor(a); }
    /** std::max semantics: equal or NaN picks the first operand. */
    static f32 maxStd(f32 a, f32 b) { return std::max(a, b); }
    static i32 trunc(f32 a) { return static_cast<int32_t>(a); }
    static i32 iadd(i32 a, i32 b) { return a + b; }
    static i32 iand(i32 a, i32 b) { return a & b; }
    static i32 ior(i32 a, i32 b) { return a | b; }
    static i32 ishl16(i32 a) { return a << 16; }
    static i32 imin(i32 a, i32 b) { return std::min(a, b); }
    static i32 imax(i32 a, i32 b) { return std::max(a, b); }
    static m32 cmpLt(f32 a, f32 b) { return a < b; }
    static m32 cmpLe(f32 a, f32 b) { return a <= b; }
    static m32 cmpGt(f32 a, f32 b) { return a > b; }
    static m32 trueMask() { return true; }
    static m32 andnot(m32 a, m32 b) { return !a && b; }
    static m32 and_(m32 a, m32 b) { return a && b; }
    static uint32_t moveMask(m32 m) { return m ? 1u : 0u; }
};

} // namespace simd
} // namespace texcache

#endif // TEXCACHE_SIMD_VEC_SCALAR_HH
