#include "perf/perf_counters.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace texcache {
namespace perf {

namespace {

/// Process total of simulated texel accesses, bumped once per replay
/// pass. Relaxed is fine: readers want an eventually-consistent sum,
/// and every bump is a bulk add from a pass that already completed.
std::atomic<uint64_t> gSimulatedAccesses{0};

#if defined(__linux__)

/// Slot order mirrors Reading's counter fields.
enum Slot
{
    kCycles,
    kInstructions,
    kLlcLoads,
    kLlcMisses,
    kBranchMisses,
    kNumSlots,
};

struct Counters
{
    int fd[kNumSlots] = {-1, -1, -1, -1, -1};
    bool available = false;
    std::string reason;
};

long
sysPerfEventOpen(struct perf_event_attr *attr)
{
    // pid=0, cpu=-1: this process, any CPU; no group leader (inherit
    // is incompatible with PERF_FORMAT_GROUP, so one fd per counter).
    return syscall(__NR_perf_event_open, attr, 0, -1, -1, 0);
}

int
openCounter(uint32_t type, uint64_t config)
{
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    // inherit=1: threads created after this point (sweep pool, tile
    // workers, service dispatcher) are counted too; read() sums the
    // whole tree. Requires opening before any worker thread spawns,
    // which is why initCounters() runs from a pre-main static.
    attr.inherit = 1;
    attr.exclude_kernel = 1; // user-space only; works at paranoid<=2
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    return int(sysPerfEventOpen(&attr));
}

uint64_t
cacheConfig(uint64_t cache, uint64_t op, uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

Counters
initCounters()
{
    Counters c;
    const char *env = std::getenv("TEXCACHE_PERF");
    if (env && env[0] == '0' && env[1] == '\0') {
        c.reason = "disabled by TEXCACHE_PERF=0";
        return c;
    }

    struct { Slot slot; uint32_t type; uint64_t config; } wanted[] = {
        {kCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
        {kInstructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {kLlcLoads, PERF_TYPE_HW_CACHE,
         cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
        {kLlcMisses, PERF_TYPE_HW_CACHE,
         cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
        {kBranchMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    };

    int firstErrno = 0;
    for (const auto &w : wanted) {
        int fd = openCounter(w.type, w.config);
        if (fd < 0 && !firstErrno)
            firstErrno = errno;
        c.fd[w.slot] = fd;
    }

    // Cycles + instructions are the floor; LLC/branch counters may be
    // absent on some hosts (VMs without PMU cache events) and degrade
    // to zero individually.
    c.available = c.fd[kCycles] >= 0 && c.fd[kInstructions] >= 0;
    if (!c.available) {
        for (int &fd : c.fd) {
            if (fd >= 0)
                close(fd);
            fd = -1;
        }
        c.reason = std::string("perf_event_open failed: ") +
                   std::strerror(firstErrno ? firstErrno : ENOSYS);
    }
    return c;
}

/// Opened once before main() so inherit=1 covers every later thread.
/// Never torn down: the fds live for the process, like the trace rings.
Counters &
counters()
{
    static Counters c = initCounters();
    return c;
}

/// Force counter setup during static initialization, ahead of any
/// code that might spawn threads from its own pre-main hooks.
struct EarlyInit
{
    EarlyInit() { (void)counters(); }
};
EarlyInit gEarlyInit;

/// Read one fd; scales for multiplexing, returns 0 on any failure.
uint64_t
readScaled(int fd, bool *multiplexed)
{
    if (fd < 0)
        return 0;
    // PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING layout.
    uint64_t buf[3] = {0, 0, 0};
    if (::read(fd, buf, sizeof(buf)) != ssize_t(sizeof(buf)))
        return 0;
    uint64_t value = buf[0], enabled = buf[1], running = buf[2];
    if (running && running < enabled) {
        *multiplexed = true;
        return uint64_t(double(value) * double(enabled) / double(running));
    }
    return value;
}

#endif // __linux__

#if !defined(__linux__)
const std::string gNoLinuxReason = "perf_event_open requires Linux";
#endif

} // namespace

bool
available()
{
#if defined(__linux__)
    return counters().available;
#else
    return false;
#endif
}

const std::string &
unavailableReason()
{
#if defined(__linux__)
    return counters().reason;
#else
    return gNoLinuxReason;
#endif
}

Reading
read()
{
    Reading r;
#if defined(__linux__)
    Counters &c = counters();
    if (!c.available)
        return r;
    r.available = true;
    r.cycles = readScaled(c.fd[kCycles], &r.multiplexed);
    r.instructions = readScaled(c.fd[kInstructions], &r.multiplexed);
    r.llcLoads = readScaled(c.fd[kLlcLoads], &r.multiplexed);
    r.llcMisses = readScaled(c.fd[kLlcMisses], &r.multiplexed);
    r.branchMisses = readScaled(c.fd[kBranchMisses], &r.multiplexed);
#endif
    return r;
}

Reading
Reading::since(const Reading &earlier) const
{
    auto sub = [](uint64_t now, uint64_t then) {
        return now >= then ? now - then : 0;
    };
    Reading d;
    d.available = available && earlier.available;
    d.multiplexed = multiplexed || earlier.multiplexed;
    d.cycles = sub(cycles, earlier.cycles);
    d.instructions = sub(instructions, earlier.instructions);
    d.llcLoads = sub(llcLoads, earlier.llcLoads);
    d.llcMisses = sub(llcMisses, earlier.llcMisses);
    d.branchMisses = sub(branchMisses, earlier.branchMisses);
    return d;
}

void
addSimulatedAccesses(uint64_t n)
{
    gSimulatedAccesses.fetch_add(n, std::memory_order_relaxed);
}

uint64_t
simulatedAccesses()
{
    return gSimulatedAccesses.load(std::memory_order_relaxed);
}

} // namespace perf
} // namespace texcache
