/**
 * @file
 * Ablation for section 7.1.1: hiding the ~50-cycle miss latency with a
 * prefetch FIFO between a lead (address-computing) rasterizer and the
 * texturing rasterizer, Talisman-style.
 *
 * Reports achieved fragments/second and pipeline efficiency versus
 * FIFO depth on the Goblet and Town scenes with the paper's Table 7.1
 * cache (32 KB, 2-way, 128 B lines, blocked+padded, tiled). The
 * reproduction target: without prefetching the pipeline loses a large
 * fraction of its 50 M fragments/s; with a modest FIFO the latency is
 * almost fully hidden and throughput is bandwidth-bound, which is the
 * paper's robustness argument.
 */

#include "bench/bench_util.hh"
#include "timing/prefetch_model.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    CacheConfig cache{32 * 1024, 128, 2};
    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;
    params.padBlocks = 4;

    const unsigned depths[] = {0, 2, 8, 32, 128, 512};

    TextTable table("Section 7.1.1: prefetch FIFO depth vs achieved "
                    "fragment rate (Mfrag/s) and efficiency");
    std::vector<std::string> header = {"Scene"};
    for (unsigned d : depths)
        header.push_back("fifo=" + std::to_string(d));
    table.header(header);

    for (BenchScene s :
         {BenchScene::Goblet, BenchScene::Town, BenchScene::Flight}) {
        const RenderOutput &out =
            store().output(s, sceneOrder(s, /*tiled=*/true, 8));
        SceneLayout layout(store().scene(s), params);
        std::vector<std::string> row = {benchSceneName(s)};
        for (unsigned d : depths) {
            TimingConfig t;
            t.fifoDepth = d;
            TimingResult r =
                simulateTiming(out.trace, layout, cache, t);
            row.push_back(
                fmtFixed(r.fragmentsPerSecond(t.clockHz) / 1e6, 1) +
                " (" +
                fmtPercent(r.efficiency(t.cyclesPerFragment), 0) + ")");
        }
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\nMachine peak: 50.0 Mfrag/s. Paper reference: the "
                 "memory latency must be hidden to sustain peak; a "
                 "prefetch FIFO achieves this.\n";
    return 0;
}
