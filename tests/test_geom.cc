/** @file Unit tests for the geometry module (vectors and matrices). */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/mat4.hh"
#include "geom/vec.hh"

using namespace texcache;

namespace {

void
expectVec3Near(Vec3 a, Vec3 b, float eps = 1e-5f)
{
    EXPECT_NEAR(a.x, b.x, eps);
    EXPECT_NEAR(a.y, b.y, eps);
    EXPECT_NEAR(a.z, b.z, eps);
}

} // namespace

TEST(Vec, DotAndCross)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_FLOAT_EQ(x.dot(y), 0.0f);
    EXPECT_FLOAT_EQ(x.dot(x), 1.0f);
    expectVec3Near(x.cross(y), z);
    expectVec3Near(y.cross(z), x);
    expectVec3Near(z.cross(x), y);
}

TEST(Vec, NormalizedLength)
{
    Vec3 v{3, 4, 0};
    EXPECT_FLOAT_EQ(v.length(), 5.0f);
    EXPECT_NEAR(v.normalized().length(), 1.0f, 1e-6f);
    expectVec3Near(Vec3{}.normalized(), Vec3{});
}

TEST(Vec, HomogeneousProject)
{
    Vec4 v{2, 4, 6, 2};
    expectVec3Near(v.project(), Vec3{1, 2, 3});
}

TEST(Mat4, IdentityIsNeutral)
{
    Mat4 id = Mat4::identity();
    Vec4 v{1, 2, 3, 1};
    Vec4 r = id * v;
    EXPECT_FLOAT_EQ(r.x, 1);
    EXPECT_FLOAT_EQ(r.y, 2);
    EXPECT_FLOAT_EQ(r.z, 3);
    EXPECT_FLOAT_EQ(r.w, 1);
}

TEST(Mat4, TranslateMovesPoints)
{
    Mat4 t = Mat4::translate({10, 20, 30});
    Vec4 r = t.transformPoint({1, 2, 3});
    expectVec3Near(r.xyz(), Vec3{11, 22, 33});
    EXPECT_FLOAT_EQ(r.w, 1.0f);
}

TEST(Mat4, ScaleScales)
{
    Mat4 s = Mat4::scale({2, 3, 4});
    expectVec3Near(s.transformPoint({1, 1, 1}).xyz(), Vec3{2, 3, 4});
}

TEST(Mat4, RotationsPreserveLengthAndAxis)
{
    float a = 0.7f;
    Vec3 p{1, 2, 3};
    for (Mat4 m : {Mat4::rotateX(a), Mat4::rotateY(a), Mat4::rotateZ(a)}) {
        Vec3 r = m.transformPoint(p).xyz();
        EXPECT_NEAR(r.length(), p.length(), 1e-5f);
    }
    // Rotation about X fixes the X axis.
    expectVec3Near(Mat4::rotateX(a).transformPoint({5, 0, 0}).xyz(),
                   Vec3{5, 0, 0});
}

TEST(Mat4, RotateZQuarterTurn)
{
    Mat4 m = Mat4::rotateZ(3.14159265f / 2.0f);
    expectVec3Near(m.transformPoint({1, 0, 0}).xyz(), Vec3{0, 1, 0},
                   1e-5f);
}

TEST(Mat4, MultiplyComposesInOrder)
{
    Mat4 t = Mat4::translate({1, 0, 0});
    Mat4 s = Mat4::scale({2, 2, 2});
    // (t * s) applies s first, then t.
    Vec3 r = (t * s).transformPoint({1, 1, 1}).xyz();
    expectVec3Near(r, Vec3{3, 2, 2});
    // (s * t) applies t first, then s.
    r = (s * t).transformPoint({1, 1, 1}).xyz();
    expectVec3Near(r, Vec3{4, 2, 2});
}

TEST(Mat4, LookAtMapsEyeToOrigin)
{
    Vec3 eye{3, 4, 5};
    Mat4 v = Mat4::lookAt(eye, {0, 0, 0}, {0, 1, 0});
    expectVec3Near(v.transformPoint(eye).xyz(), Vec3{0, 0, 0}, 1e-4f);
}

TEST(Mat4, LookAtLooksDownNegativeZ)
{
    Mat4 v = Mat4::lookAt({0, 0, 10}, {0, 0, 0}, {0, 1, 0});
    // A point in front of the eye must land on the -z axis.
    Vec3 r = v.transformPoint({0, 0, 0}).xyz();
    EXPECT_NEAR(r.x, 0.0f, 1e-5f);
    EXPECT_NEAR(r.y, 0.0f, 1e-5f);
    EXPECT_LT(r.z, 0.0f);
}

TEST(Mat4, PerspectiveMapsNearFarPlanes)
{
    float near = 1.0f, far = 100.0f;
    Mat4 p = Mat4::perspective(1.0f, 1.0f, near, far);
    // Points on the near/far planes map to ndc z = -1 / +1.
    Vec4 pn = p.transformPoint({0, 0, -near});
    Vec4 pf = p.transformPoint({0, 0, -far});
    EXPECT_NEAR(pn.project().z, -1.0f, 1e-5f);
    EXPECT_NEAR(pf.project().z, 1.0f, 1e-4f);
    // w equals the view-space distance.
    EXPECT_NEAR(pn.w, near, 1e-5f);
    EXPECT_NEAR(pf.w, far, 1e-4f);
}

TEST(Mat4, PerspectiveFovEdges)
{
    // With fovy = 90 degrees, a point at 45 degrees up maps to the top
    // edge of the frustum (ndc y = 1).
    Mat4 p = Mat4::perspective(3.14159265f / 2.0f, 1.0f, 0.1f, 10.0f);
    Vec4 r = p.transformPoint({0, 5, -5});
    EXPECT_NEAR(r.project().y, 1.0f, 1e-5f);
}
