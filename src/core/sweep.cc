#include "core/sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace texcache {

namespace {

/**
 * A worker's remaining index range, packed (begin << 32 | end) into
 * one atomic word so the owner's pop and a thief's steal are both
 * single CAS operations.
 */
class StealRange
{
  public:
    void
    set(uint32_t begin, uint32_t end)
    {
        r_.store(pack(begin, end), std::memory_order_release);
    }

    /** Owner side: take the front index. */
    bool
    pop(uint32_t &idx)
    {
        uint64_t cur = r_.load(std::memory_order_acquire);
        for (;;) {
            uint32_t b = begin(cur), e = end(cur);
            if (b >= e)
                return false;
            if (r_.compare_exchange_weak(cur, pack(b + 1, e),
                                         std::memory_order_acq_rel)) {
                idx = b;
                return true;
            }
        }
    }

    /** Thief side: take the back half of the remaining range. */
    bool
    stealHalf(uint32_t &sb, uint32_t &se)
    {
        uint64_t cur = r_.load(std::memory_order_acquire);
        for (;;) {
            uint32_t b = begin(cur), e = end(cur);
            if (b >= e)
                return false;
            uint32_t mid = b + (e - b + 1) / 2;
            if (r_.compare_exchange_weak(cur, pack(b, mid),
                                         std::memory_order_acq_rel)) {
                sb = mid;
                se = e;
                return true;
            }
        }
    }

  private:
    static uint64_t
    pack(uint32_t b, uint32_t e)
    {
        return (static_cast<uint64_t>(b) << 32) | e;
    }
    static uint32_t begin(uint64_t r) { return static_cast<uint32_t>(r >> 32); }
    static uint32_t end(uint64_t r) { return static_cast<uint32_t>(r); }

    std::atomic<uint64_t> r_{0};
};

} // namespace

unsigned
Sweep::threadCount()
{
    if (const char *env = std::getenv("TEXCACHE_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
        inform("ignoring invalid TEXCACHE_THREADS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
Sweep::runIndexed(size_t n, const std::function<void(size_t)> &work)
{
    panic_if(n > ~0u, "sweep of ", n, " points exceeds 32-bit indices");
    unsigned threads = threadCount();
    if (threads > n)
        threads = static_cast<unsigned>(n);
    if (threads <= 1) {
        for (size_t i = 0; i < n; ++i)
            work(i);
        return;
    }

    std::vector<StealRange> queues(threads);
    for (unsigned t = 0; t < threads; ++t)
        queues[t].set(static_cast<uint32_t>(n * t / threads),
                      static_cast<uint32_t>(n * (t + 1) / threads));

    std::atomic<uint64_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;

    auto worker = [&](unsigned self) {
        StealRange &own = queues[self];
        for (;;) {
            uint32_t i;
            if (own.pop(i)) {
                try {
                    work(i);
                } catch (...) {
                    {
                        std::lock_guard<std::mutex> g(error_mu);
                        if (!error)
                            error = std::current_exception();
                    }
                    failed.store(true);
                }
                done.fetch_add(1, std::memory_order_acq_rel);
                continue;
            }
            if (failed.load())
                return;
            bool got = false;
            for (unsigned k = 1; k < threads && !got; ++k) {
                uint32_t b, e;
                if (queues[(self + k) % threads].stealHalf(b, e)) {
                    own.set(b, e);
                    got = true;
                }
            }
            if (!got) {
                if (done.load(std::memory_order_acquire) >= n)
                    return;
                std::this_thread::yield();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(worker, t);
    worker(0);
    for (std::thread &th : pool)
        th.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace texcache
