/** @file Integration tests for the software pipeline renderer. */

#include <gtest/gtest.h>

#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"
#include "trace/trace_stats.hh"

using namespace texcache;

TEST(Renderer, QuadSceneCoversExpectedFragments)
{
    Scene scene = makeQuadTestScene(64, 128);
    RenderOutput out = render(scene, RasterOrder::horizontal());
    // The unit quad at z=0 viewed from distance 2.2 with fov ~57deg
    // covers a large centered square; sanity-band the count.
    EXPECT_GT(out.stats.fragments, 3000u);
    EXPECT_LT(out.stats.fragments, 128u * 128u);
    EXPECT_EQ(out.stats.trianglesIn, 2u);
    EXPECT_EQ(out.stats.trianglesRasterized, 2u);
}

TEST(Renderer, TraceSizeMatchesTexelAccesses)
{
    Scene scene = makeQuadTestScene(64, 128);
    RenderOutput out = render(scene, RasterOrder::horizontal());
    EXPECT_EQ(out.trace.size(), out.stats.texelAccesses);
    EXPECT_EQ(out.stats.fragments,
              out.stats.bilinearFragments +
                  out.stats.trilinearFragments);
    // Accesses = 4 * bilinear + 8 * trilinear fragments.
    EXPECT_EQ(out.stats.texelAccesses,
              4 * out.stats.bilinearFragments +
                  8 * out.stats.trilinearFragments);
}

TEST(Renderer, DeterministicAcrossRuns)
{
    Scene scene = makeQuadTestScene(32, 64);
    RenderOutput a = render(scene, RasterOrder::horizontal());
    RenderOutput b = render(scene, RasterOrder::horizontal());
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); i += 97) {
        EXPECT_EQ(a.trace[i].pack(), b.trace[i].pack());
    }
}

TEST(Renderer, RasterOrderChangesTraceOrderNotContent)
{
    Scene scene = makeQuadTestScene(64, 128);
    RenderOutput h = render(scene, RasterOrder::horizontal());
    RenderOutput v = render(scene, RasterOrder::vertical());
    EXPECT_EQ(h.trace.size(), v.trace.size());
    EXPECT_EQ(h.stats.fragments, v.stats.fragments);
    // Same unique texels in both orders.
    TraceStats hs = analyzeTrace(h.trace);
    TraceStats vs = analyzeTrace(v.trace);
    EXPECT_EQ(hs.trilinearLower.uniqueTexels,
              vs.trilinearLower.uniqueTexels);
    EXPECT_EQ(hs.bilinear.uniqueTexels, vs.bilinear.uniqueTexels);
}

TEST(Renderer, MagnifiedQuadUsesBilinear)
{
    // Tiny texture on a big screen -> magnification everywhere.
    Scene scene = makeQuadTestScene(8, 256);
    RenderOutput out = render(scene, RasterOrder::horizontal());
    EXPECT_GT(out.stats.bilinearFragments, 0u);
    EXPECT_EQ(out.stats.trilinearFragments, 0u);
}

TEST(Renderer, MinifiedQuadUsesTrilinear)
{
    // Big texture on a small screen -> minification everywhere.
    Scene scene = makeQuadTestScene(512, 64);
    RenderOutput out = render(scene, RasterOrder::horizontal());
    EXPECT_GT(out.stats.trilinearFragments, 0u);
    EXPECT_EQ(out.stats.bilinearFragments, 0u);
}

TEST(Renderer, RepeatedUvRaisesRepetitionFactor)
{
    Scene once = makeQuadTestScene(64, 128, /*uv_repeat=*/1.0f);
    Scene thrice = makeQuadTestScene(64, 128, /*uv_repeat=*/3.0f);
    RenderOutput a = render(once, RasterOrder::horizontal());
    RenderOutput b = render(thrice, RasterOrder::horizontal());
    EXPECT_LT(a.repetition.repetitionFactor(), 1.3);
    EXPECT_GT(b.repetition.repetitionFactor(), 2.0);
}

TEST(Renderer, OccludedFragmentsStillGenerateTexelTraffic)
{
    // Two identical quads, the second behind the first: fragments and
    // texture accesses double even though the image is unchanged
    // (hidden surface removal happens after texturing, Fig 2.1).
    Scene scene = makeQuadTestScene(64, 128);
    Scene two = scene;
    for (const SceneTriangle &t : scene.triangles) {
        SceneTriangle back = t;
        for (int i = 0; i < 3; ++i)
            back.v[i].pos.z -= 0.5f; // push away from the camera
        two.triangles.push_back(back);
    }
    RenderOutput one_out = render(scene, RasterOrder::horizontal());
    RenderOutput two_out = render(two, RasterOrder::horizontal());
    EXPECT_GT(two_out.stats.fragments,
              one_out.stats.fragments * 3 / 2);
    EXPECT_GT(two_out.trace.size(), one_out.trace.size() * 3 / 2);
}

TEST(Renderer, DepthTestKeepsNearestColor)
{
    // Render a red quad in front of a blue quad and check the
    // framebuffer center is red regardless of submission order.
    auto build = [](bool red_first) {
        Scene s;
        s.name = "depth";
        s.screenW = s.screenH = 64;
        s.textures.emplace_back(
            Image(8, 8, Rgba8{255, 0, 0, 255})); // red
        s.textures.emplace_back(
            Image(8, 8, Rgba8{0, 0, 255, 255})); // blue
        auto quad = [&](uint16_t tex, float z) {
            SceneVertex v0{{-1, -1, z}, {0, 0}, 1.0f};
            SceneVertex v1{{1, -1, z}, {1, 0}, 1.0f};
            SceneVertex v2{{1, 1, z}, {1, 1}, 1.0f};
            SceneVertex v3{{-1, 1, z}, {0, 1}, 1.0f};
            s.triangles.push_back({{v0, v1, v2}, tex});
            s.triangles.push_back({{v0, v2, v3}, tex});
        };
        if (red_first) {
            quad(0, 0.5f);  // nearer (camera at +z)
            quad(1, -0.5f);
        } else {
            quad(1, -0.5f);
            quad(0, 0.5f);
        }
        s.view = Mat4::lookAt({0, 0, 3}, {0, 0, 0}, {0, 1, 0});
        s.proj = Mat4::perspective(1.0f, 1.0f, 0.1f, 10.0f);
        return s;
    };
    for (bool red_first : {true, false}) {
        RenderOutput out = render(build(red_first),
                                  RasterOrder::horizontal());
        Rgba8 center = out.framebuffer.at(32, 32);
        EXPECT_GT(center.r, 150) << "red_first=" << red_first;
        EXPECT_LT(center.b, 100) << "red_first=" << red_first;
    }
}

TEST(Renderer, OptionsDisableCapture)
{
    Scene scene = makeQuadTestScene(32, 64);
    RenderOptions opts;
    opts.captureTrace = false;
    opts.writeFramebuffer = false;
    opts.countRepetition = false;
    RenderOutput out = render(scene, RasterOrder::horizontal(), opts);
    EXPECT_TRUE(out.trace.empty());
    EXPECT_TRUE(out.framebuffer.empty());
    EXPECT_GT(out.stats.fragments, 0u); // stats still collected
}
