/**
 * @file
 * Reproduces Figure 5.2: miss rate versus cache size for the base
 * nonblocked representation, fully associative caches, 32-byte lines.
 *
 * Panel (a) rasterizes horizontally, panel (b) vertically. The paper's
 * headline observations to reproduce:
 *  - first-level working sets of 4-16 KB (sharp miss-rate drops);
 *  - cold-miss floors below ~3% at large sizes (Flight highest);
 *  - the Town scene degrading badly under vertical rasterization
 *    because its textures appear upright on screen (the base
 *    representation's orientation sensitivity).
 *
 * Every (scene, direction) cell of the sweep is one single-pass
 * FA capacity sweep (runFaSweep); the eight passes run in parallel
 * on the sweep pool after the traces are rendered (or loaded from
 * the trace cache) up front.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

struct Point
{
    BenchScene scene;
    ScanDirection dir;
    const TexelTrace *trace;
    std::shared_ptr<SceneLayout> layout;
};

struct Curve
{
    std::vector<double> rates;
    uint64_t workingSet = 0;
};

void
panel(const char *title, ScanDirection dir,
      const std::vector<uint64_t> &sizes,
      const std::vector<SweepResult<Curve>> &curves, size_t offset)
{
    TextTable table(title);
    std::vector<std::string> header = {"Scene"};
    for (uint64_t s : sizes)
        header.push_back(fmtBytes(s));
    header.push_back("WorkingSet");
    table.header(header);

    size_t i = offset;
    for (BenchScene s : allBenchScenes()) {
        (void)dir;
        const Curve &c = curves[i++].value;
        std::vector<std::string> row = {benchSceneName(s)};
        for (double r : c.rates)
            row.push_back(fmtPercent(r));
        row.push_back(fmtBytes(c.workingSet));
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 512 << 10);

    // Render (or load) traces and build layouts serially, then
    // simulate in parallel: both are read-only inside the sweep.
    LayoutParams params;
    params.kind = LayoutKind::Nonblocked;
    std::vector<Point> points;
    for (ScanDirection dir :
         {ScanDirection::Horizontal, ScanDirection::Vertical}) {
        for (BenchScene s : allBenchScenes()) {
            RasterOrder order;
            order.dir = dir;
            points.push_back(
                {s, dir, &store().trace(s, order),
                 std::make_shared<SceneLayout>(store().scene(s),
                                               params)});
        }
    }

    auto curves = Sweep::run(points, [&](const Point &p) {
        std::vector<CacheStats> stats =
            runFaSweep(*p.trace, *p.layout, 32, sizes);
        Curve c;
        for (const CacheStats &s : stats)
            c.rates.push_back(s.missRate());
        c.workingSet = firstWorkingSet(c.rates, sizes);
        return c;
    });

    panel("Figure 5.2(a): base representation, horizontal "
          "rasterization, FA, 32B lines",
          ScanDirection::Horizontal, sizes, curves, 0);
    panel("Figure 5.2(b): base representation, vertical rasterization, "
          "FA, 32B lines",
          ScanDirection::Vertical, sizes, curves,
          allBenchScenes().size());
    std::cout << "Paper reference: working sets Flight 4KB, Town 8KB "
                 "(16KB vertical), Guitar 16KB, Goblet 16KB; Town's "
                 "small-cache miss rates rise sharply under vertical "
                 "rasterization.\n";

    dumpStats("fig_5_2", [&](RunManifest &m, stats::Group &root) {
        m.setScene("all");
        m.config("layout", "nonblocked");
        m.config("line_bytes", uint64_t(32));
        m.config("assoc", "full");
        m.config("sizes", std::to_string(sizes.front()) + ".." +
                              std::to_string(sizes.back()));
        exportPointTimes(*root.findGroup("sweep"), curves);
        for (size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            const Curve &c = curves[i].value;
            std::string tag =
                std::string(benchSceneName(p.scene)) + "_" +
                (p.dir == ScanDirection::Horizontal ? "h" : "v");
            stats::Group &g = root.group(tag);
            g.constant("working_set_bytes", c.workingSet,
                       "first size whose miss rate nears the floor");
            g.real("miss_rate_min", c.rates.back(),
                   "miss rate at the largest swept size");
            g.real("miss_rate_max", c.rates.front(),
                   "miss rate at the smallest swept size");
            // The simulation is deterministic: pin each curve's working
            // set exactly so any simulator change shows up in CI.
            m.metric("working_set_" + tag,
                     static_cast<double>(c.workingSet), "exact");
        }
    });
    return 0;
}
