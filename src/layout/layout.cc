#include "layout/layout.hh"

#include "layout/blocked.hh"
#include "layout/compressed.hh"
#include "layout/nonblocked.hh"
#include "layout/williams.hh"

namespace texcache {

std::vector<LevelDims>
levelDims(const MipMap &mip)
{
    std::vector<LevelDims> d;
    d.reserve(mip.numLevels());
    for (unsigned l = 0; l < mip.numLevels(); ++l)
        d.push_back({mip.width(l), mip.height(l)});
    return d;
}

const char *
layoutKindName(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::Williams:
        return "williams";
      case LayoutKind::Nonblocked:
        return "nonblocked";
      case LayoutKind::Blocked:
        return "blocked";
      case LayoutKind::PaddedBlocked:
        return "padded";
      case LayoutKind::Blocked6D:
        return "blocked6d";
      case LayoutKind::CompressedBlocked:
        return "compressed";
    }
    panic("unknown layout kind");
}

std::unique_ptr<TextureLayout>
makeLayout(const LayoutParams &params, const std::vector<LevelDims> &d,
           AddressSpace &space)
{
    switch (params.kind) {
      case LayoutKind::Williams:
        return std::make_unique<WilliamsLayout>(d, space);
      case LayoutKind::Nonblocked:
        return std::make_unique<NonblockedLayout>(d, space);
      case LayoutKind::Blocked:
        return std::make_unique<BlockedLayout>(d, space, params.blockW,
                                               params.blockH);
      case LayoutKind::PaddedBlocked:
        return std::make_unique<PaddedBlockedLayout>(
            d, space, params.blockW, params.blockH, params.padBlocks);
      case LayoutKind::Blocked6D:
        return std::make_unique<Blocked6DLayout>(
            d, space, params.blockW, params.blockH, params.coarseBytes);
      case LayoutKind::CompressedBlocked:
        return std::make_unique<CompressedBlockedLayout>(
            d, space, params.blockW, params.blockH,
            params.compressionRatio);
    }
    panic("unknown layout kind");
}

} // namespace texcache
