/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic choices in the scene generators and tests flow through
 * this PCG32 generator so that traces, images and cache statistics are
 * bit-reproducible across runs and platforms.
 */

#ifndef TEXCACHE_COMMON_RNG_HH
#define TEXCACHE_COMMON_RNG_HH

#include <cstdint>

namespace texcache {

/** Minimal PCG32 generator (O'Neill 2014), deterministic and seedable. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL)
    {
        state = 0;
        inc = (seed << 1u) | 1u;
        next();
        state += seed;
        next();
    }

    /** Next raw 32-bit value. */
    uint32_t
    next()
    {
        uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
        uint32_t rot = static_cast<uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint32_t
    below(uint32_t bound)
    {
        // Lemire-style rejection-free-enough reduction; bias is
        // negligible for our bounds and keeps the generator branch-light.
        return static_cast<uint32_t>(
            (static_cast<uint64_t>(next()) * bound) >> 32);
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + uniform() * (hi - lo);
    }

  private:
    uint64_t state;
    uint64_t inc;
};

} // namespace texcache

#endif // TEXCACHE_COMMON_RNG_HH
