/**
 * @file
 * Interactive cache-design explorer.
 *
 * Renders a chosen benchmark and sweeps any combination of memory
 * representation, rasterization order and cache organization from the
 * command line, printing miss rate, miss breakdown (3-C) and memory
 * bandwidth. This is the tool a texture-mapping-hardware designer
 * would use on top of the library.
 *
 * Usage:
 *   cache_explorer [--scene flight|town|guitar|goblet]
 *                  [--layout williams|nonblocked|blocked|padded|
 *                            blocked6d|compressed]
 *                  [--block WxH] [--ratio N]
 *                  [--order horizontal|vertical|hilbert]
 *                  [--tile N] [--size BYTES] [--line BYTES]
 *                  [--assoc N|full]
 *
 * Example:
 *   cache_explorer --scene town --layout padded --block 8x8 \
 *                  --order vertical --tile 8 --size 32768 --line 128 \
 *                  --assoc 2
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cache/bandwidth.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace texcache;

namespace {

[[noreturn]] void
usage(const std::string &msg)
{
    std::cerr << "cache_explorer: " << msg
              << "\nSee the header comment for usage.\n";
    std::exit(1);
}

BenchScene
parseScene(const std::string &s)
{
    if (s == "flight")
        return BenchScene::Flight;
    if (s == "town")
        return BenchScene::Town;
    if (s == "guitar")
        return BenchScene::Guitar;
    if (s == "goblet")
        return BenchScene::Goblet;
    usage("unknown scene '" + s + "'");
}

LayoutKind
parseLayout(const std::string &s)
{
    if (s == "williams")
        return LayoutKind::Williams;
    if (s == "nonblocked")
        return LayoutKind::Nonblocked;
    if (s == "blocked")
        return LayoutKind::Blocked;
    if (s == "padded")
        return LayoutKind::PaddedBlocked;
    if (s == "blocked6d")
        return LayoutKind::Blocked6D;
    if (s == "compressed")
        return LayoutKind::CompressedBlocked;
    usage("unknown layout '" + s + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchScene scene_id = BenchScene::Goblet;
    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;
    RasterOrder order = RasterOrder::horizontal();
    unsigned tile = 0;
    CacheConfig cache{32 * 1024, 128, 2};

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--scene") {
            scene_id = parseScene(next());
        } else if (arg == "--layout") {
            params.kind = parseLayout(next());
        } else if (arg == "--block") {
            std::string b = next();
            size_t x = b.find('x');
            if (x == std::string::npos)
                usage("--block expects WxH, e.g. 8x8");
            params.blockW =
                static_cast<unsigned>(std::atoi(b.substr(0, x).c_str()));
            params.blockH = static_cast<unsigned>(
                std::atoi(b.substr(x + 1).c_str()));
        } else if (arg == "--ratio") {
            params.compressionRatio =
                static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--order") {
            std::string o = next();
            if (o == "horizontal")
                order.dir = ScanDirection::Horizontal;
            else if (o == "vertical")
                order.dir = ScanDirection::Vertical;
            else if (o == "hilbert")
                order.hilbert = true;
            else
                usage("unknown order '" + o + "'");
        } else if (arg == "--tile") {
            tile = static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--size") {
            cache.sizeBytes =
                static_cast<uint64_t>(std::atoll(next().c_str()));
        } else if (arg == "--line") {
            cache.lineBytes =
                static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--assoc") {
            std::string a = next();
            cache.assoc = a == "full"
                              ? CacheConfig::kFullyAssoc
                              : static_cast<unsigned>(
                                    std::atoi(a.c_str()));
        } else {
            usage("unknown option '" + arg + "'");
        }
    }
    if (tile > 0) {
        order.tiled = true;
        order.tileW = order.tileH = tile;
    }
    // 6-D blocking sizes its super-block to the cache under study.
    params.coarseBytes = cache.sizeBytes;

    Scene scene = makeScene(scene_id);
    std::cerr << "rendering " << scene.name << " (" << order.str()
              << ")...\n";
    RenderOptions opts;
    opts.writeFramebuffer = false;
    RenderOutput out = render(scene, order, opts);

    SceneLayout layout(scene, params);
    MissBreakdown breakdown = classifyCache(out.trace, layout, cache);
    MachineModel machine;

    TextTable table("cache_explorer result");
    table.header({"Scene", "Layout", "Order", "Cache", "MissRate",
                  "Cold", "Capacity", "Conflict", "BW (MB/s)"});
    table.row({scene.name, layout.layout(0).name(), order.str(),
               cache.str(), fmtPercent(breakdown.missRate()),
               std::to_string(breakdown.cold),
               std::to_string(breakdown.capacity),
               std::to_string(breakdown.conflict),
               fmtFixed(machine.cachedBandwidth(breakdown.missRate(),
                                                cache.lineBytes) /
                            1e6,
                        1)});
    table.print(std::cout);
    return 0;
}
