/**
 * @file
 * Open-addressing hash containers for line addresses.
 *
 * The cache simulators and the stack-distance profiler spend most of
 * their per-access time in hash lookups keyed by a line address
 * (first-touch tracking, LRU node lookup, last-access timestamps).
 * std::unordered_{set,map} pay a heap allocation per node and a pointer
 * chase per probe; these flat tables keep everything in one array with
 * linear probing, which is the single biggest lever on simulator
 * throughput (DESIGN.md section 8).
 *
 * Keys are line addresses (byte address >> lineShift), so the all-ones
 * value can never occur in practice and serves as the empty sentinel.
 * Capacity is a power of two and grows at ~70% load.
 */

#ifndef TEXCACHE_CACHE_LINE_TABLE_HH
#define TEXCACHE_CACHE_LINE_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"

namespace texcache {

namespace detail {

/** Mixes line-address bits; adjacent lines land in distinct slots. */
inline uint64_t
lineHash(uint64_t k)
{
    // splitmix64 finalizer - cheap and well distributed.
    k += 0x9e3779b97f4a7c15ULL;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
}

} // namespace detail

/** Flat linear-probing set of line addresses. */
class LineSet
{
  public:
    static constexpr uint64_t kEmpty = ~0ULL;

    LineSet() { slots_.assign(kMinCapacity, kEmpty); }

    /** Insert @p line; returns true iff it was not present before. */
    bool
    insert(uint64_t line)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        size_t i = detail::lineHash(line) & mask();
        while (slots_[i] != kEmpty) {
            if (slots_[i] == line)
                return false;
            i = (i + 1) & mask();
        }
        slots_[i] = line;
        ++size_;
        return true;
    }

    bool
    contains(uint64_t line) const
    {
        size_t i = detail::lineHash(line) & mask();
        while (slots_[i] != kEmpty) {
            if (slots_[i] == line)
                return true;
            i = (i + 1) & mask();
        }
        return false;
    }

    uint64_t size() const { return size_; }

    void
    clear()
    {
        slots_.assign(kMinCapacity, kEmpty);
        size_ = 0;
    }

  private:
    static constexpr size_t kMinCapacity = 64;

    size_t mask() const { return slots_.size() - 1; }

    void
    grow()
    {
        std::vector<uint64_t> old = std::move(slots_);
        slots_.assign(old.size() * 2, kEmpty);
        for (uint64_t line : old) {
            if (line == kEmpty)
                continue;
            size_t i = detail::lineHash(line) & mask();
            while (slots_[i] != kEmpty)
                i = (i + 1) & mask();
            slots_[i] = line;
        }
    }

    std::vector<uint64_t> slots_;
    uint64_t size_ = 0;
};

/**
 * Flat linear-probing map from line address to a 64-bit value.
 * Supports insert-or-assign and lookup only - the stack-distance
 * profiler never erases (lines stay live once seen).
 */
class LineMap
{
  public:
    static constexpr uint64_t kEmpty = ~0ULL;

    LineMap() { keys_.assign(kMinCapacity, kEmpty); vals_.resize(kMinCapacity); }

    /**
     * Find the slot for @p line. Returns a pointer to its value, or
     * nullptr when absent.
     */
    uint64_t *
    find(uint64_t line)
    {
        size_t i = detail::lineHash(line) & mask();
        while (keys_[i] != kEmpty) {
            if (keys_[i] == line)
                return &vals_[i];
            i = (i + 1) & mask();
        }
        return nullptr;
    }

    const uint64_t *
    find(uint64_t line) const
    {
        return const_cast<LineMap *>(this)->find(line);
    }

    /** Insert @p line -> @p val; the line must not be present. */
    void
    insert(uint64_t line, uint64_t val)
    {
        if ((size_ + 1) * 10 >= keys_.size() * 7)
            grow();
        size_t i = detail::lineHash(line) & mask();
        while (keys_[i] != kEmpty)
            i = (i + 1) & mask();
        keys_[i] = line;
        vals_[i] = val;
        ++size_;
    }

    uint64_t size() const { return size_; }

    void
    clear()
    {
        keys_.assign(kMinCapacity, kEmpty);
        size_ = 0;
    }

    /** Visit every (line, value) pair in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < keys_.size(); ++i)
            if (keys_[i] != kEmpty)
                fn(keys_[i], vals_[i]);
    }

  private:
    static constexpr size_t kMinCapacity = 64;

    size_t mask() const { return keys_.size() - 1; }

    void
    grow()
    {
        std::vector<uint64_t> old_keys = std::move(keys_);
        std::vector<uint64_t> old_vals = std::move(vals_);
        keys_.assign(old_keys.size() * 2, kEmpty);
        vals_.resize(old_keys.size() * 2);
        for (size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmpty)
                continue;
            size_t j = detail::lineHash(old_keys[i]) & mask();
            while (keys_[j] != kEmpty)
                j = (j + 1) & mask();
            keys_[j] = old_keys[i];
            vals_[j] = old_vals[i];
        }
    }

    std::vector<uint64_t> keys_;
    std::vector<uint64_t> vals_;
    uint64_t size_ = 0;
};

} // namespace texcache

#endif // TEXCACHE_CACHE_LINE_TABLE_HH
