#include "vt/vt_memory.hh"

namespace texcache {

VirtualTextureMemory::VirtualTextureMemory(const VtConfig &config)
    : config_(config),
      pool_(PagePoolConfig{config.pageBytes, config.poolPages}),
      fetch_(FetchQueueConfig{config.maxInFlight, config.fetchLatency},
             config.dram, config.pageBytes)
{
    fatal_if(config.sampleInterval == 0, "zero residency sample interval");
}

void
VirtualTextureMemory::advance(uint64_t ticks)
{
    // Tick-at-a-time so no sampleInterval boundary is skipped.
    while (ticks--) {
        ++now_;
        if (now_ % config_.sampleInterval == 0)
            residencySamples_.push_back(pool_.residentPages());
    }
    fetch_.drain(now_, [this](PageId p) { pool_.insert(p); });
}

VtAccess
VirtualTextureMemory::touch(Addr addr)
{
    advance(1);
    PageId page = pool_.pageOf(addr);
    touched_.insert(page);
    if (pool_.touch(page))
        return VtAccess::Hit;
    fetch_.request(page, pool_.baseOf(page), now_);
    return VtAccess::Miss;
}

void
VirtualTextureMemory::pinRange(Addr base, uint64_t bytes)
{
    panic_if(bytes == 0, "pinning an empty range");
    PageId first = pool_.pageOf(base);
    PageId last = pool_.pageOf(base + bytes - 1);
    for (PageId p = first; p <= last; ++p)
        pool_.pin(p);
}

void
VirtualTextureMemory::prefaultRange(Addr base, uint64_t bytes)
{
    panic_if(bytes == 0, "prefaulting an empty range");
    PageId first = pool_.pageOf(base);
    PageId last = pool_.pageOf(base + bytes - 1);
    for (PageId p = first; p <= last; ++p)
        pool_.insert(p);
}

void
VirtualTextureMemory::settle()
{
    fetch_.drainAll([this](PageId p) { pool_.insert(p); });
}

} // namespace texcache
