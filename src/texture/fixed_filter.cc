#include "texture/fixed_filter.hh"

#include <algorithm>
#include <cmath>

namespace texcache {

namespace {

/** 8-bit fractional weight of a sample coordinate. */
inline unsigned
weight8(float frac)
{
    int w = static_cast<int>(frac * 256.0f + 0.5f);
    return static_cast<unsigned>(std::clamp(w, 0, 256));
}

/** The section-7.1.2 core: a + (w * (b - a)) >> 8, per channel. */
inline Rgba8
lerpFixed(Rgba8 a, Rgba8 b, unsigned w)
{
    auto chan = [w](uint8_t x, uint8_t y) {
        int d = static_cast<int>(y) - static_cast<int>(x);
        return static_cast<uint8_t>(
            static_cast<int>(x) +
            ((static_cast<int>(w) * d + 128) >> 8));
    };
    return {chan(a.r, b.r), chan(a.g, b.g), chan(a.b, b.b),
            chan(a.a, b.a)};
}

inline unsigned
wrapCoord(int coord, unsigned size, WrapMode wrap)
{
    if (wrap == WrapMode::Repeat)
        return static_cast<unsigned>(coord) & (size - 1);
    if (coord < 0)
        return 0;
    if (coord >= static_cast<int>(size))
        return size - 1;
    return static_cast<unsigned>(coord);
}

/** Fixed-point bilinear within one level; appends 4 touches. */
Rgba8
bilinearFixed(const MipMap &mip, unsigned level, float u, float v,
              WrapMode wrap, TexelTouch *touches)
{
    const Image &img = mip.level(level);
    unsigned w = img.width();
    unsigned h = img.height();
    float su = u * static_cast<float>(w) - 0.5f;
    float sv = v * static_cast<float>(h) - 0.5f;
    int i0 = static_cast<int>(std::floor(su));
    int j0 = static_cast<int>(std::floor(sv));
    unsigned wu = weight8(su - static_cast<float>(i0));
    unsigned wv = weight8(sv - static_cast<float>(j0));

    unsigned u0 = wrapCoord(i0, w, wrap);
    unsigned u1 = wrapCoord(i0 + 1, w, wrap);
    unsigned v0 = wrapCoord(j0, h, wrap);
    unsigned v1 = wrapCoord(j0 + 1, h, wrap);

    touches[0] = {static_cast<uint16_t>(level),
                  static_cast<uint16_t>(u0),
                  static_cast<uint16_t>(v0)};
    touches[1] = {static_cast<uint16_t>(level),
                  static_cast<uint16_t>(u1),
                  static_cast<uint16_t>(v0)};
    touches[2] = {static_cast<uint16_t>(level),
                  static_cast<uint16_t>(u0),
                  static_cast<uint16_t>(v1)};
    touches[3] = {static_cast<uint16_t>(level),
                  static_cast<uint16_t>(u1),
                  static_cast<uint16_t>(v1)};

    Rgba8 top = lerpFixed(img.texel(u0, v0), img.texel(u1, v0), wu);
    Rgba8 bot = lerpFixed(img.texel(u0, v1), img.texel(u1, v1), wu);
    return lerpFixed(top, bot, wv);
}

} // namespace

FixedSampleResult
sampleMipMapFixed(const MipMap &mip, float u, float v, float lambda,
                  WrapMode wrap)
{
    FixedSampleResult res;
    if (lambda <= 0.0f) {
        res.kind = FilterKind::Bilinear;
        res.numTouches = 4;
        res.color = bilinearFixed(mip, 0, u, v, wrap, res.touches);
        return res;
    }

    // Level selection identical to the float path.
    unsigned max_level = mip.numLevels() - 1;
    float clamped = std::min(lambda, static_cast<float>(max_level));
    unsigned lower = static_cast<unsigned>(clamped);
    if (lower > max_level - (max_level ? 1 : 0) && max_level > 0)
        lower = max_level - 1;
    if (max_level == 0)
        lower = 0;
    unsigned upper = std::min(lower + 1, max_level);
    float frac = std::clamp(clamped - static_cast<float>(lower), 0.0f,
                            1.0f);

    res.kind = FilterKind::Trilinear;
    res.numTouches = 8;
    Rgba8 lo = bilinearFixed(mip, lower, u, v, wrap, res.touches);
    Rgba8 hi = bilinearFixed(mip, upper, u, v, wrap, res.touches + 4);
    res.color = lerpFixed(lo, hi, weight8(frac));
    return res;
}

} // namespace texcache
