/** @file Tests for the machine and bandwidth model (section 7). */

#include <gtest/gtest.h>

#include "cache/bandwidth.hh"

using namespace texcache;

TEST(Machine, PaperConstants)
{
    MachineModel m;
    // 100 MHz * 4 texels/cycle / 8 texels/fragment = 50 M fragments/s.
    EXPECT_DOUBLE_EQ(m.fragmentsPerSecond(), 50e6);
    EXPECT_DOUBLE_EQ(m.texelAccessesPerSecond(), 400e6);
    // Uncached: 4 B * 8 * 50M = 1.6e9 B/s = the paper's "1.5 GB/s".
    EXPECT_DOUBLE_EQ(m.uncachedBandwidth(), 1.6e9);
}

TEST(Machine, CachedBandwidthScalesWithMissRateAndLine)
{
    MachineModel m;
    // 1% miss rate, 32 B lines: 400M * 0.01 * 32 = 128 MB/s.
    EXPECT_DOUBLE_EQ(m.cachedBandwidth(0.01, 32), 128e6);
    // Doubling the line doubles fetched bytes at equal miss rate.
    EXPECT_DOUBLE_EQ(m.cachedBandwidth(0.01, 64), 256e6);
}

TEST(Machine, ReductionFactorInPaperRange)
{
    MachineModel m;
    // The paper reports 3x-15x reduction for 32 KB caches; check the
    // model reproduces the arithmetic at its reported miss rates.
    // Town 32KB/32B: miss rate 0.81% -> ~99 MB/s -> ~16x.
    double f_town = m.reductionFactor(0.0081, 32);
    EXPECT_NEAR(f_town, 1.6e9 / (400e6 * 0.0081 * 32), 1e-9);
    EXPECT_GT(f_town, 10.0);
    // Flight 32KB/32B: miss rate 2.78% -> ~356 MB/s -> ~4.5x.
    double f_flight = m.reductionFactor(0.0278, 32);
    EXPECT_GT(f_flight, 3.0);
    EXPECT_LT(f_flight, 6.0);
}

TEST(Machine, ZeroMissRateGivesZeroBandwidth)
{
    MachineModel m;
    EXPECT_DOUBLE_EQ(m.cachedBandwidth(0.0, 128), 0.0);
    EXPECT_DOUBLE_EQ(m.reductionFactor(0.0, 128), 0.0);
}
