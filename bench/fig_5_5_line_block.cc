/**
 * @file
 * Reproduces Figure 5.5: miss rate versus matched line/block size for
 * all four scenes on fully associative 32 KB caches.
 *
 * At 32 KB the remaining misses are mostly cold, so growing the
 * matched line+block size keeps cutting the miss rate: the paper
 * reports e.g. Flight 2.8% -> 0.87% and Town 0.8% -> 0.21% going from
 * 32 B to 128 B.
 *
 * The 4 scenes x 5 line sizes are independent FA runs executed as one
 * parallel sweep after the serial render/layout phase.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    constexpr uint64_t kCacheSize = 32 * 1024;
    const unsigned lines[] = {16, 32, 64, 128, 256};

    struct Point
    {
        const TexelTrace *trace;
        std::shared_ptr<SceneLayout> layout;
        unsigned line;
    };
    std::vector<Point> points;
    for (BenchScene s : allBenchScenes()) {
        const TexelTrace &trace = store().trace(s, sceneOrder(s));
        for (unsigned line : lines)
            points.push_back({&trace,
                              std::make_shared<SceneLayout>(
                                  store().scene(s), blockedForLine(line)),
                              line});
    }

    auto results = Sweep::run(points, [](const Point &p) {
        return runCache(*p.trace, *p.layout,
                        {kCacheSize, p.line, CacheConfig::kFullyAssoc})
            .missRate();
    });

    TextTable table("Figure 5.5: miss rate vs matched line/block size, "
                    "FA 32KB");
    std::vector<std::string> header = {"Scene"};
    for (unsigned l : lines)
        header.push_back(fmtBytes(l) + " (" +
                         std::to_string(benchutil::blockedForLine(l)
                                            .blockW) +
                         "x" +
                         std::to_string(benchutil::blockedForLine(l)
                                            .blockH) +
                         ")");
    table.header(header);

    size_t i = 0;
    for (BenchScene s : allBenchScenes()) {
        std::vector<std::string> row = {benchSceneName(s)};
        for (unsigned l : lines) {
            (void)l;
            row.push_back(fmtPercent(results[i++].value));
        }
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\nPaper reference @32B->128B: Flight 2.8%->0.87%, "
                 "Goblet 1.5%->0.41%, Guitar 1.2%->0.36%, Town "
                 "0.8%->0.21%.\n";

    dumpStats("fig_5_5", [&](RunManifest &m, stats::Group &root) {
        m.setScene("all");
        m.config("cache_bytes", kCacheSize);
        m.config("assoc", "full");
        exportPointTimes(*root.findGroup("sweep"), results);
        size_t k = 0;
        double sum = 0.0;
        for (BenchScene s : allBenchScenes()) {
            stats::Group &sg = root.group(benchSceneName(s));
            for (unsigned l : lines) {
                double r = results[k++].value;
                sg.real("line_" + std::to_string(l), r,
                        "miss rate at the matched line/block size");
                sum += r;
            }
        }
        m.metric("mean_miss_rate", sum / static_cast<double>(k),
                 "exact");
    });
    return 0;
}
