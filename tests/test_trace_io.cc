/** @file Tests for binary trace file round-tripping. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "trace/chunked_trace.hh"
#include "trace/trace_io.hh"

using namespace texcache;

namespace {

TexelTrace
sampleTrace(size_t n)
{
    TexelTrace t;
    for (size_t i = 0; i < n; ++i) {
        TexelRecord r;
        r.texture = static_cast<uint16_t>(i % 51);
        r.level = static_cast<uint16_t>(i % 11);
        r.u = static_cast<uint16_t>((i * 37) & 0x3ff);
        r.v = static_cast<uint16_t>((i * 101) & 0x3ff);
        r.kind = static_cast<TouchKind>(i % 4);
        t.append(r);
    }
    return t;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

} // namespace

TEST(TraceIo, RoundTripsExactly)
{
    TexelTrace t = sampleTrace(100000);
    std::string path = tempPath("roundtrip.trc");
    writeTrace(t, path);
    TexelTrace back = readTrace(path);
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); i += 53)
        ASSERT_EQ(back[i].pack(), t[i].pack()) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    TexelTrace t;
    std::string path = tempPath("empty.trc");
    writeTrace(t, path);
    TexelTrace back = readTrace(path);
    EXPECT_EQ(back.size(), 0u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(readTrace(tempPath("does_not_exist.trc")),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, BadMagicIsFatal)
{
    std::string path = tempPath("bad_magic.trc");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOTATRACE_FILE_AT_ALL";
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "not a texcache trace");
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedPayloadIsFatal)
{
    TexelTrace t = sampleTrace(1000);
    std::string path = tempPath("truncated.trc");
    writeTrace(t, path);
    // Chop the file short.
    {
        std::ifstream in(path, std::ios::binary);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(all.data(),
                  static_cast<std::streamsize>(all.size() / 2));
    }
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

// ---- Chunked trace files (trace/chunked_trace.hh) ------------------

namespace {

/** Write a finalized chunked file of @p n sample records. */
std::string
writeChunked(const char *name, size_t n, uint32_t chunk_records = 256)
{
    std::string path = tempPath(name);
    TexelTrace t = sampleTrace(n);
    ChunkedTraceWriter w(path, chunk_records);
    // Append in awkward spans so writes straddle chunk boundaries.
    size_t i = 0;
    while (i < t.size()) {
        size_t take = std::min<size_t>(t.size() - i, 173);
        w.append(t.packed().data() + i, take);
        i += take;
    }
    w.finalize();
    return path;
}

/** Patch @p len bytes at @p off in place. */
void
patchFile(const std::string &path, uint64_t off, const void *bytes,
          size_t len)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(static_cast<const char *>(bytes),
            static_cast<std::streamsize>(len));
}

TraceFileError
mustFail(const std::string &path)
{
    ChunkedTraceFile f;
    TraceFileError err;
    EXPECT_FALSE(f.open(path, err)) << path;
    return err;
}

} // namespace

TEST(ChunkedTrace, RoundTripsExactly)
{
    size_t n = 10007; // deliberately not a chunk multiple
    std::string path = writeChunked("chunked_roundtrip.ctrace", n);
    ChunkedTraceFile f = ChunkedTraceFile::mustOpen(path);
    EXPECT_EQ(f.info().records, n);
    EXPECT_EQ(f.info().chunkRecords, 256u);
    EXPECT_TRUE(f.info().finalized);
    EXPECT_EQ(f.info().chunks(), (n + 255) / 256);

    TexelTrace want = sampleTrace(n);
    TexelTrace back = f.readAll();
    ASSERT_EQ(back.size(), want.size());
    EXPECT_TRUE(back.packed() == want.packed());

    // A chunk subrange visits exactly those records, in order.
    std::vector<uint64_t> got;
    f.visitChunks(3, 7, [&](const uint64_t *recs, size_t cnt) {
        got.insert(got.end(), recs, recs + cnt);
    });
    ASSERT_EQ(got.size(), 4u * 256u);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want.packed()[3 * 256 + i]) << i;
    std::remove(path.c_str());
}

TEST(ChunkedTrace, EmptyFileRoundTrips)
{
    std::string path = writeChunked("chunked_empty.ctrace", 0);
    ChunkedTraceFile f = ChunkedTraceFile::mustOpen(path);
    EXPECT_EQ(f.info().records, 0u);
    EXPECT_EQ(f.info().chunks(), 0u);
    EXPECT_EQ(f.readAll().size(), 0u);
    std::remove(path.c_str());
}

TEST(ChunkedTrace, MissingFileReportsOffsetZero)
{
    TraceFileError err = mustFail(tempPath("nope.ctrace"));
    EXPECT_EQ(err.offset, 0u);
    EXPECT_NE(err.reason.find("cannot open"), std::string::npos)
        << err.str();
}

TEST(ChunkedTrace, TruncatedHeaderReportsFileSize)
{
    std::string path = tempPath("chunked_short.ctrace");
    {
        std::ofstream out(path, std::ios::binary);
        out << "TEXCHK01\x01";
    }
    TraceFileError err = mustFail(path);
    EXPECT_EQ(err.offset, 9u);
    EXPECT_NE(err.reason.find("truncated header"), std::string::npos)
        << err.str();
    std::remove(path.c_str());
}

TEST(ChunkedTrace, BadMagicReportsOffsetZero)
{
    std::string path = writeChunked("chunked_magic.ctrace", 100);
    patchFile(path, 0, "TEXWRONG", 8);
    TraceFileError err = mustFail(path);
    EXPECT_EQ(err.offset, 0u);
    EXPECT_NE(err.reason.find("magic"), std::string::npos) << err.str();
    std::remove(path.c_str());
}

TEST(ChunkedTrace, BadVersionReportsItsOffset)
{
    std::string path = writeChunked("chunked_version.ctrace", 100);
    uint32_t v = 99;
    patchFile(path, 8, &v, sizeof(v));
    TraceFileError err = mustFail(path);
    EXPECT_EQ(err.offset, 8u);
    EXPECT_NE(err.reason.find("version"), std::string::npos)
        << err.str();
    std::remove(path.c_str());
}

TEST(ChunkedTrace, NonPowerOfTwoChunkSizeReportsItsOffset)
{
    std::string path = writeChunked("chunked_chunksz.ctrace", 100);
    uint32_t c = 300;
    patchFile(path, 12, &c, sizeof(c));
    TraceFileError err = mustFail(path);
    EXPECT_EQ(err.offset, 12u);
    std::remove(path.c_str());
}

TEST(ChunkedTrace, UnfinalizedWriterLeavesRejectableFile)
{
    // A writer that dies before finalize() (crash, kill) must leave a
    // file readers refuse, not a silently-short trace.
    std::string path = tempPath("chunked_torn.ctrace");
    {
        TexelTrace t = sampleTrace(1000);
        ChunkedTraceWriter w(path, 256);
        w.append(t.packed().data(), t.size());
        // no finalize()
    }
    TraceFileError err = mustFail(path);
    EXPECT_EQ(err.offset, 24u);
    EXPECT_NE(err.reason.find("never finalized"), std::string::npos)
        << err.str();
    std::remove(path.c_str());
}

TEST(ChunkedTrace, TruncatedPayloadReportsClaimVsActual)
{
    std::string path = writeChunked("chunked_chop.ctrace", 1000);
    uint64_t full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 720);
    TraceFileError err = mustFail(path);
    EXPECT_EQ(err.offset, full - 720);
    EXPECT_NE(err.reason.find("truncated payload"), std::string::npos)
        << err.str();
    EXPECT_NE(err.reason.find("1000"), std::string::npos) << err.str();
    std::remove(path.c_str());
}

TEST(ChunkedTrace, MustOpenDiesWithOffsetAndReason)
{
    std::string path = writeChunked("chunked_die.ctrace", 100);
    patchFile(path, 0, "TEXWRONG", 8);
    EXPECT_EXIT(ChunkedTraceFile::mustOpen(path),
                ::testing::ExitedWithCode(1), "offset 0");
    std::remove(path.c_str());
}
