/**
 * @file
 * The blocked family of texture representations (paper sections 5.3 and
 * 6.2).
 *
 * BlockedLayout stores each level as a 4-D array: texels within a
 * bw x bh block are consecutive, and blocks are laid out in row-major
 * block order. PaddedBlockedLayout appends unused pad blocks to each
 * block row so that vertically adjacent blocks cannot map to the same
 * cache set (Fig 6.3(a)). Blocked6DLayout adds a second, coarser level
 * of blocking whose super-block is sized to the cache so that a square
 * region of blocks fits without conflicts (Fig 6.3(b)).
 *
 * Coarse pyramid levels smaller than a block (or super-block) clamp the
 * effective block dimensions to the level dimensions, preserving the
 * power-of-two structure with zero wasted memory.
 */

#ifndef TEXCACHE_LAYOUT_BLOCKED_HH
#define TEXCACHE_LAYOUT_BLOCKED_HH

#include "layout/layout.hh"

namespace texcache {

/** Per-level precomputed addressing parameters shared by the family. */
struct BlockedLevel
{
    Addr base;
    unsigned lbw;     ///< log2(effective block width in texels)
    unsigned lbh;     ///< log2(effective block height)
    unsigned bsLog;   ///< log2(block bytes)
    unsigned rsLog;   ///< log2(row-of-blocks stride in bytes), unpadded
    unsigned psLog;   ///< log2(pad bytes per block row); 0 if unpadded
    bool padded;      ///< whether psLog applies
};

/** 4-D blocked representation (section 5.3). */
class BlockedLayout : public TextureLayout
{
  public:
    BlockedLayout(const std::vector<LevelDims> &d, AddressSpace &space,
                  unsigned block_w, unsigned block_h);

    unsigned addresses(const TexelTouch &t, Addr out[3]) const override;
    std::string name() const override;

    AddressingCost
    cost() const override
    {
        // Two extra adds over the nonblocked base (section 5.3.1): the
        // block address (by << rs) + (bx << bs) and the sub-block offset
        // (sy << lbw) + sx, of which two shifts are constant-amount.
        return {/*adds=*/4, /*shifts=*/1, /*constShifts=*/4, /*ands=*/2,
                /*accessesPerTexel=*/1};
    }

    unsigned blockW() const { return blockW_; }
    unsigned blockH() const { return blockH_; }

  protected:
    /** Shared constructor logic; @p pad_blocks > 0 enables padding. */
    BlockedLayout(const std::vector<LevelDims> &d, AddressSpace &space,
                  unsigned block_w, unsigned block_h, unsigned pad_blocks);

    std::vector<BlockedLevel> levels_;
    unsigned blockW_;
    unsigned blockH_;
    unsigned padBlocks_ = 0;
};

/** Blocked with pad blocks at the end of each block row (Fig 6.3(a)). */
class PaddedBlockedLayout : public BlockedLayout
{
  public:
    PaddedBlockedLayout(const std::vector<LevelDims> &d,
                        AddressSpace &space, unsigned block_w,
                        unsigned block_h, unsigned pad_blocks);

    std::string name() const override;

    AddressingCost
    cost() const override
    {
        // One extra add over blocked (section 6.2): + (by << ps).
        AddressingCost c = BlockedLayout::cost();
        c.adds += 1;
        c.constShifts += 1;
        return c;
    }
};

/** Two-level (6-D) blocking with cache-sized super-blocks (Fig 6.3(b)). */
class Blocked6DLayout : public TextureLayout
{
  public:
    /**
     * @param coarse_bytes the cache size the super-block should fit; the
     *        super-block is the largest square power-of-two region whose
     *        storage is <= coarse_bytes.
     */
    Blocked6DLayout(const std::vector<LevelDims> &d, AddressSpace &space,
                    unsigned block_w, unsigned block_h,
                    uint64_t coarse_bytes);

    unsigned addresses(const TexelTouch &t, Addr out[3]) const override;
    std::string name() const override;

    AddressingCost
    cost() const override
    {
        // Two extra adds over blocked (section 6.2).
        return {/*adds=*/6, /*shifts=*/1, /*constShifts=*/6, /*ands=*/4,
                /*accessesPerTexel=*/1};
    }

    unsigned coarseW() const { return coarseW_; }

  private:
    struct Level
    {
        Addr base;
        unsigned lcw;    ///< log2(effective super-block width in texels)
        unsigned lch;    ///< log2(effective super-block height)
        unsigned cbLog;  ///< log2(super-block bytes)
        unsigned crsLog; ///< log2(row-of-super-blocks stride in bytes)
        unsigned lbw;    ///< log2(effective fine block width)
        unsigned lbh;
        unsigned bsLog;  ///< log2(fine block bytes)
        unsigned frsLog; ///< log2(fine row-of-blocks stride in bytes)
    };
    std::vector<Level> levels_;
    unsigned blockW_;
    unsigned blockH_;
    unsigned coarseW_; ///< nominal super-block edge in texels
};

} // namespace texcache

#endif // TEXCACHE_LAYOUT_BLOCKED_HH
