/**
 * @file
 * Google-benchmark microbenchmark for the cache simulator components:
 * set-associative CacheSim, O(1) FullyAssocLru, and the Mattson
 * stack-distance profiler. These bound the wall-clock cost of the
 * figure sweeps (tens of millions of accesses each).
 */

#include <benchmark/benchmark.h>

#include "cache/cache_sim.hh"
#include "cache/stack_dist.hh"

using namespace texcache;

namespace {

/** Texture-like address stream: mostly local walk, occasional jump. */
inline uint64_t
nextAddr(uint32_t &x, uint64_t &cursor)
{
    x = x * 1664525u + 1013904223u;
    if ((x >> 24) < 8)
        cursor = (x >> 4) & 0xffffff;
    else
        cursor = (cursor + ((x >> 8) & 0xff)) & 0xffffff;
    return cursor;
}

void
cacheSimSetAssoc(benchmark::State &state)
{
    CacheSim cache({32 * 1024, 64, static_cast<unsigned>(state.range(0))});
    uint32_t x = 7;
    uint64_t cursor = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(nextAddr(x, cursor)));
    state.SetItemsProcessed(state.iterations());
}

void
fullyAssocLru(benchmark::State &state)
{
    FullyAssocLru cache(32 * 1024, 64);
    uint32_t x = 7;
    uint64_t cursor = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(nextAddr(x, cursor)));
    state.SetItemsProcessed(state.iterations());
}

void
stackDistProfiler(benchmark::State &state)
{
    StackDistProfiler prof(64);
    uint32_t x = 7;
    uint64_t cursor = 0;
    for (auto _ : state)
        prof.access(nextAddr(x, cursor));
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(prof.coldMisses());
}

} // namespace

BENCHMARK(cacheSimSetAssoc)->Arg(1)->Arg(2)->Arg(8);
BENCHMARK(fullyAssocLru);
BENCHMARK(stackDistProfiler);

BENCHMARK_MAIN();
