/**
 * @file
 * Multi-fragment-generator cache simulation.
 *
 * The paper's conclusion (section 8) proposes parallel systems where
 * several fragment generators share one texture memory, each with its
 * own cache (no coherence needed: texture data is read-only), and
 * poses the open question: "how to balance the work among multiple
 * fragment generators without reducing the spatial locality in each
 * reference stream."
 *
 * This model makes that question measurable. Fragments of a rendered
 * frame are assigned to N generators under a screen-space work
 * distribution policy; each generator owns a private cache fed only
 * with its own texel addresses. The aggregate miss traffic, compared
 * with the single-generator baseline, quantifies the locality lost to
 * each distribution.
 */

#ifndef TEXCACHE_CORE_PARALLEL_HH
#define TEXCACHE_CORE_PARALLEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_sim.hh"
#include "core/scene_layout.hh"
#include "trace/texel_trace.hh"

namespace texcache {

/** Screen-space work distribution across fragment generators. */
enum class WorkDistribution
{
    /** Scanlines round-robin: generator = y % N (fine interleave). */
    ScanlineInterleaved,
    /** Screen tiles round-robin: generator = tile index % N. */
    TileInterleaved,
    /** Contiguous horizontal bands: generator = y / (H / N). */
    Bands,
};

/** Display name for a distribution policy. */
const char *workDistributionName(WorkDistribution d);

/** Result of a parallel run. */
struct ParallelStats
{
    std::vector<CacheStats> perGenerator;
    uint64_t fragments = 0;

    uint64_t
    totalAccesses() const
    {
        uint64_t t = 0;
        for (const CacheStats &s : perGenerator)
            t += s.accesses;
        return t;
    }

    uint64_t
    totalMisses() const
    {
        uint64_t t = 0;
        for (const CacheStats &s : perGenerator)
            t += s.misses;
        return t;
    }

    double
    aggregateMissRate() const
    {
        uint64_t a = totalAccesses();
        return a ? static_cast<double>(totalMisses()) / a : 0.0;
    }

    /** Max/mean fragment-count imbalance across generators (1 = even). */
    double loadImbalance() const;
};

/**
 * Replay a frame's fragments through N per-generator caches.
 *
 * The texel trace does not carry screen positions, so this simulator
 * is fed during rendering through RenderOptions::onFragment: the
 * caller maps each fragment's touches to addresses under its chosen
 * layout and calls addFragment with the fragment's screen position.
 */
class MultiGeneratorSim
{
  public:
    MultiGeneratorSim(unsigned num_generators, WorkDistribution dist,
                      const CacheConfig &per_cache, unsigned tile = 32,
                      unsigned screen_h = 1024);

    /** Route one fragment's texel addresses to its generator. */
    void addFragment(int x, int y, const Addr *addrs, unsigned n);

    ParallelStats finish() const;

    unsigned
    generatorFor(int x, int y) const
    {
        switch (dist_) {
          case WorkDistribution::ScanlineInterleaved:
            return static_cast<unsigned>(y) % n_;
          case WorkDistribution::TileInterleaved: {
              unsigned tx = static_cast<unsigned>(x) / tile_;
              unsigned ty = static_cast<unsigned>(y) / tile_;
              return (ty * 37 + tx) % n_; // skewed round-robin
          }
          case WorkDistribution::Bands: {
              unsigned band = screenH_ / n_;
              unsigned g = static_cast<unsigned>(y) / (band ? band : 1);
              return g < n_ ? g : n_ - 1;
          }
        }
        panic("unknown distribution");
    }

  private:
    unsigned n_;
    WorkDistribution dist_;
    unsigned tile_;
    unsigned screenH_;
    std::vector<CacheSim> caches_;
    std::vector<uint64_t> fragmentsPer_;
    uint64_t fragments_ = 0;
};

} // namespace texcache

#endif // TEXCACHE_CORE_PARALLEL_HH
