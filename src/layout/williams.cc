#include "layout/williams.hh"

namespace texcache {

WilliamsLayout::WilliamsLayout(const std::vector<LevelDims> &d,
                               AddressSpace &space)
    : TextureLayout(d)
{
    // The quadrant nesting of the 1983 scheme is only well defined for
    // square images: once one dimension of a non-square pyramid clamps
    // at 1, a coarser level's component plane would overlap its
    // predecessor's.
    fatal_if(dims_[0].w != dims_[0].h,
             "Williams layout requires square textures, got ",
             dims_[0].w, "x", dims_[0].h);
    uint64_t w2 = 2ULL * dims_[0].w;
    uint64_t h2 = 2ULL * dims_[0].h;
    footprint_ = w2 * h2; // one byte per component cell
    base_ = space.allocate(footprint_);
    strideLog_ = log2Exact(w2);
}

unsigned
WilliamsLayout::addresses(const TexelTouch &t, Addr out[3]) const
{
    const LevelDims &lv = dims_[t.level];
    // Component-plane origins within the arrangement: R right of the
    // level's quadrant, G below it, B diagonal. (ox, oy) per component:
    uint64_t stride = 1ULL << strideLog_;
    uint64_t rx = lv.w + t.u, ry = t.v;          // R: (w_l, 0)
    uint64_t gx = t.u, gy = lv.h + t.v;          // G: (0, h_l)
    uint64_t bx = lv.w + t.u, by = lv.h + t.v;   // B: (w_l, h_l)
    out[0] = base_ + ry * stride + rx;
    out[1] = base_ + gy * stride + gx;
    out[2] = base_ + by * stride + bx;
    return 3;
}

} // namespace texcache
